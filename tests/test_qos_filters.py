"""Tests for QoS/NUMA scheduler integration."""

import pytest

from repro.infrastructure.flavors import Flavor, default_catalog
from repro.qos.filters import NumaAlignmentWeigher, NumaFitFilter, QosClassFilter
from repro.qos.numa import NumaTopology
from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec


def host(host_id="h1", overcommit="4.0", **kwargs) -> HostState:
    state = HostState(
        host_id=host_id,
        free_vcpus=1000,
        free_ram_mb=1e7,
        free_disk_gb=1e5,
        total_vcpus=2000,
        total_ram_mb=2e7,
        total_disk_gb=2e5,
        **kwargs,
    )
    state.metadata["cpu_overcommit"] = overcommit
    return state


def spec(flavor_name="g_c2_m4", vm_id="v1") -> RequestSpec:
    return RequestSpec(vm_id=vm_id, flavor=default_catalog().get(flavor_name))


class TestQosClassFilter:
    def test_guaranteed_rejects_overcommitted_host(self):
        flt = QosClassFilter()
        hana_spec = spec("h_c32_m512")  # guaranteed tier
        assert not flt.passes(host(overcommit="4.0"), hana_spec)
        assert flt.passes(host(overcommit="1.0"), hana_spec)

    def test_besteffort_tolerates_overcommit(self):
        flt = QosClassFilter()
        assert flt.passes(host(overcommit="4.0"), spec("g_c2_m4"))

    def test_contention_ceiling_enforced(self):
        flt = QosClassFilter(contention_scores={"noisy": 20.0, "calm": 2.0})
        burstable = spec("g_c32_m128")  # ceiling 10%
        assert not flt.passes(host("noisy", overcommit="2.0"), burstable)
        assert flt.passes(host("calm", overcommit="2.0"), burstable)

    def test_besteffort_accepts_moderate_contention(self):
        flt = QosClassFilter(contention_scores={"noisy": 20.0})
        assert flt.passes(host("noisy"), spec("g_c2_m4"))  # ceiling 30%

    def test_unknown_host_counts_as_quiet(self):
        flt = QosClassFilter(contention_scores={})
        assert flt.passes(host(overcommit="2.0"), spec("g_c32_m128"))


class TestNumaFitFilter:
    def _topologies(self):
        fresh = NumaTopology.symmetric(2, 128, 2048 * 1024)
        fragmented = NumaTopology.symmetric(2, 128, 2048 * 1024)
        # Fill each socket to 14 free cores: aggregate room remains, but no
        # single socket can host a 16-vCPU aligned placement.
        fragmented.place("x", Flavor("fx", vcpus=50, ram_gib=100))
        fragmented.place("y", Flavor("fy", vcpus=50, ram_gib=100))
        return {"fresh": fresh, "fragmented": fragmented}

    def test_alignment_required_tier_needs_contiguous_room(self):
        flt = NumaFitFilter(self._topologies())
        hana_spec = spec("h_c16_m256")  # guaranteed: aligned
        assert flt.passes(host("fresh"), hana_spec)
        assert not flt.passes(host("fragmented"), hana_spec)

    def test_besteffort_needs_only_aggregate_room(self):
        flt = NumaFitFilter(self._topologies())
        small = spec("g_c2_m4")  # besteffort: unaligned OK
        assert flt.passes(host("fragmented"), small)

    def test_host_without_topology_unconstrained(self):
        flt = NumaFitFilter({})
        assert flt.passes(host("unknown"), spec("h_c16_m256"))


class TestNumaAlignmentWeigher:
    def test_prefers_host_with_room_on_one_socket(self):
        roomy = NumaTopology.symmetric(2, 128, 2048 * 1024)
        tight = NumaTopology.symmetric(2, 128, 2048 * 1024)
        tight.place("x", Flavor("fx", vcpus=55, ram_gib=64))
        tight.place("y", Flavor("fy", vcpus=55, ram_gib=64))
        weigher = NumaAlignmentWeigher({"roomy": roomy, "tight": tight})
        request = spec("g_c16_m64")
        assert weigher.raw_weight(host("roomy"), request) > weigher.raw_weight(
            host("tight"), request
        )

    def test_unknown_host_neutral(self):
        weigher = NumaAlignmentWeigher({})
        assert weigher.raw_weight(host("x"), spec()) == 0.0
