"""End-to-end integration: generate → validate → analyse → export → reload.

Exercises every stage a downstream user runs, in one flow, asserting the
stages compose (the reloaded archive validates identically and supports
the same analyses and queries).
"""

import numpy as np
import pytest

from repro.analysis.figures import fig14_utilization_cdfs, fig9_contention_aggregate
from repro.analysis.report import render_experiments_report
from repro.core.dataset import SAPCloudDataset
from repro.datagen.validation import validate_dataset
from repro.telemetry.query import evaluate


@pytest.fixture(scope="module")
def exported(small_dataset_module, tmp_path_factory):
    directory = tmp_path_factory.mktemp("pipeline") / "archive"
    small_dataset_module.to_csv(directory)
    return directory


@pytest.fixture(scope="module")
def small_dataset_module(request):
    # Reuse the session-scoped dataset through the module fixture chain.
    return request.getfixturevalue("small_dataset")


def test_generated_dataset_validates(small_dataset_module):
    report = validate_dataset(small_dataset_module)
    assert report.passed, report.render()


def test_reloaded_archive_validates_identically(exported, small_dataset_module):
    reloaded = SAPCloudDataset.from_csv(exported)
    original = validate_dataset(small_dataset_module)
    restored = validate_dataset(reloaded)
    assert restored.passed
    by_name = {c.name: c.measured for c in original.checks}
    for check in restored.checks:
        assert check.measured == pytest.approx(by_name[check.name], rel=1e-6)


def test_analyses_consistent_across_reload(exported, small_dataset_module):
    reloaded = SAPCloudDataset.from_csv(exported)
    a = fig9_contention_aggregate(small_dataset_module)
    b = fig9_contention_aggregate(reloaded)
    np.testing.assert_allclose(
        np.asarray(a["max"], dtype=float),
        np.asarray(b["max"], dtype=float),
        rtol=1e-9,
    )
    cdf_a = fig14_utilization_cdfs(small_dataset_module)["cpu"][0]
    cdf_b = fig14_utilization_cdfs(reloaded)["cpu"][0]
    np.testing.assert_allclose(cdf_a, cdf_b, rtol=1e-6)


def test_query_language_on_reloaded_archive(exported):
    reloaded = SAPCloudDataset.from_csv(exported)
    result = evaluate(
        reloaded.store,
        'mean(vrops_hostsystem_memory_usage_percentage)',
    )
    series = result.single()
    assert 0.0 < series.mean() < 100.0


def test_vms_alive_at_survives_reload(exported, small_dataset_module):
    """`deleted_at` holds NaN for still-alive VMs; the CSV round-trip must
    keep the column numeric or alive-at queries silently drop those VMs."""
    reloaded = SAPCloudDataset.from_csv(exported)
    mid = (reloaded.window_start + reloaded.window_end) / 2
    original_alive = len(small_dataset_module.vms_alive_at(mid))
    assert len(reloaded.vms_alive_at(mid)) == original_alive
    assert original_alive > 0


def test_report_renders_from_reloaded_archive(exported):
    reloaded = SAPCloudDataset.from_csv(exported)
    report = render_experiments_report(reloaded)
    assert "Fig 9" in report and "Table 2" in report
