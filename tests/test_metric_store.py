"""Tests for the MetricStore: label indexing, range queries, aggregation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.telemetry.store import MetricStore, Sample, SampleBlock
from repro.telemetry.timeseries import TimeSeries


@pytest.fixture
def store() -> MetricStore:
    s = MetricStore()
    for node in ("n1", "n2"):
        for t, v in [(0, 1.0), (60, 2.0), (120, 3.0)]:
            s.append("cpu", {"host": node, "dc": "a"}, t, v if node == "n1" else v * 10)
    return s


class TestWrites:
    def test_append_and_query(self, store):
        series = store.query("cpu", {"host": "n1", "dc": "a"})
        assert list(series.values) == [1.0, 2.0, 3.0]

    def test_label_order_irrelevant(self, store):
        a = store.query("cpu", {"dc": "a", "host": "n1"})
        b = store.query("cpu", {"host": "n1", "dc": "a"})
        assert a == b

    def test_out_of_order_appends_sorted_on_read(self):
        store = MetricStore()
        store.append("m", None, 100, 2.0)
        store.append("m", None, 50, 1.0)
        assert list(store.query("m", None).timestamps) == [50, 100]

    def test_duplicate_timestamp_keeps_last_write(self):
        store = MetricStore()
        store.append("m", None, 10, 1.0)
        store.append("m", None, 10, 9.0)
        series = store.query("m", None)
        assert len(series) == 1
        assert series.values[0] == 9.0

    def test_append_series_bulk(self):
        store = MetricStore()
        store.append_series("m", {"x": "1"}, TimeSeries([1, 2], [5, 6]))
        assert store.sample_count() == 2

    def test_ingest_samples(self):
        store = MetricStore()
        n = store.ingest(
            [Sample("m", (("a", "b"),), 0, 1.0), Sample("m", (("a", "b"),), 1, 2.0)]
        )
        assert n == 2
        assert len(store.query("m", {"a": "b"})) == 2

    def test_append_after_read_invalidates_cache(self):
        store = MetricStore()
        store.append("m", None, 0, 1.0)
        assert len(store.query("m", None)) == 1
        store.append("m", None, 10, 2.0)
        assert len(store.query("m", None)) == 2

    def test_append_columns(self):
        store = MetricStore()
        n = store.append_columns(
            "m", {"x": "1"}, np.array([0.0, 10.0]), np.array([1.0, 2.0])
        )
        assert n == 2
        assert list(store.query("m", {"x": "1"}).values) == [1.0, 2.0]

    def test_append_columns_rejects_shape_mismatch(self):
        store = MetricStore()
        with pytest.raises(ValueError):
            store.append_columns("m", None, np.array([0.0, 1.0]), np.array([1.0]))

    def test_ingest_blocks_matches_per_sample_ingest(self):
        ts = np.array([0.0, 10.0, 20.0])
        vs = np.array([1.0, np.nan, 3.0])  # NaN staleness must survive
        columnar = MetricStore()
        n = columnar.ingest_blocks([SampleBlock("m", (("a", "b"),), ts, vs)])
        assert n == 3
        row_wise = MetricStore()
        row_wise.ingest(
            [Sample("m", (("a", "b"),), t, v) for t, v in zip(ts, vs)]
        )
        a = columnar.query("m", {"a": "b"})
        b = row_wise.query("m", {"a": "b"})
        assert list(a.timestamps) == list(b.timestamps)
        np.testing.assert_array_equal(a.values, b.values)
        assert np.isnan(a.values[1])

    def test_ingest_blocks_rejects_shape_mismatch(self):
        store = MetricStore()
        with pytest.raises(ValueError):
            store.ingest_blocks(
                [SampleBlock("m", (), np.array([0.0, 1.0]), np.array([1.0]))]
            )

    def test_ingest_blocks_converts_plain_lists(self):
        store = MetricStore()
        n = store.ingest_blocks([SampleBlock("m", (), [0, 10], [1, 2])])
        assert n == 2
        assert list(store.query("m", None).values) == [1.0, 2.0]

    def test_block_append_then_row_append_interleave(self):
        # A row append after a bulk block append must not be lost or
        # corrupt the buffer (the finalised array is a copy, not a view).
        store = MetricStore()
        store.ingest_blocks(
            [SampleBlock("m", (), np.array([0.0, 10.0]), np.array([1.0, 2.0]))]
        )
        assert len(store.query("m", None)) == 2
        store.append("m", None, 20.0, 3.0)
        assert list(store.query("m", None).values) == [1.0, 2.0, 3.0]


class TestReads:
    def test_missing_series_is_empty(self, store):
        assert len(store.query("cpu", {"host": "ghost"})) == 0
        assert len(store.query("nope", None)) == 0

    def test_metrics_listing(self, store):
        assert store.metrics() == ["cpu"]

    def test_series_count(self, store):
        assert store.series_count() == 2
        assert store.series_count("cpu") == 2
        assert store.series_count("nope") == 0

    def test_labelsets(self, store):
        sets = store.labelsets("cpu")
        assert {d["host"] for d in sets} == {"n1", "n2"}

    def test_window(self, store):
        out = store.window("cpu", {"host": "n1", "dc": "a"}, 60, 121)
        assert list(out.timestamps) == [60, 120]

    def test_window_cache_serves_repeat_reads(self, store):
        first = store.window("cpu", {"host": "n1", "dc": "a"}, 0, 121)
        again = store.window("cpu", {"host": "n1", "dc": "a"}, 0, 121)
        assert again is first  # LRU hit: identical object

    def test_window_cache_invalidated_by_append(self, store):
        first = store.window("cpu", {"host": "n1", "dc": "a"}, 0, 500)
        store.append("cpu", {"host": "n1", "dc": "a"}, 180, 4.0)
        fresh = store.window("cpu", {"host": "n1", "dc": "a"}, 0, 500)
        assert fresh is not first
        assert list(fresh.timestamps) == [0, 60, 120, 180]

    def test_query_range_shim_warns_and_delegates(self, store):
        with pytest.warns(DeprecationWarning, match="query_range is deprecated"):
            out = store.query_range("cpu", {"host": "n1", "dc": "a"}, 60, 121)
        assert list(out.timestamps) == [60, 120]

    def test_select_with_matcher(self, store):
        matched = list(store.select("cpu", {"host": "n1"}))
        assert len(matched) == 1
        everything = list(store.select("cpu", {"dc": "a"}))
        assert len(everything) == 2

    def test_select_no_matcher_returns_all(self, store):
        assert len(list(store.select("cpu"))) == 2


class TestAggregation:
    def test_mean_across_series(self, store):
        out = store.aggregate_across("cpu", agg="mean")
        assert list(out.values) == [5.5, 11.0, 16.5]

    def test_max_across_series(self, store):
        out = store.aggregate_across("cpu", agg="max")
        assert list(out.values) == [10.0, 20.0, 30.0]

    def test_aggregate_handles_missing_timestamps(self):
        store = MetricStore()
        store.append("m", {"h": "a"}, 0, 1.0)
        store.append("m", {"h": "b"}, 60, 3.0)
        out = store.aggregate_across("m", agg="mean")
        assert list(out.values) == [1.0, 3.0]  # singletons at each timestamp

    def test_aggregate_empty_metric(self):
        assert len(MetricStore().aggregate_across("nope")) == 0

    def test_aggregate_custom_callable(self, store):
        out = store.aggregate_across("cpu", agg=lambda a: float(np.sum(a)))
        assert list(out.values) == [11.0, 22.0, 33.0]

    def test_unknown_agg_raises(self, store):
        with pytest.raises(ValueError, match="unknown aggregation"):
            store.aggregate_across("cpu", agg="bogus")


@given(
    points=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=100,
    )
)
def test_property_store_read_is_sorted_dedup(points):
    """Whatever the write order, reads are sorted and timestamp-unique."""
    store = MetricStore()
    for t, v in points:
        store.append("m", None, t, v)
    series = store.query("m", None)
    assert np.all(np.diff(series.timestamps) > 0)
    # Last write per timestamp wins.
    last = {}
    for t, v in points:
        last[t] = v
    assert len(series) == len(last)
    for t, v in zip(series.timestamps, series.values):
        assert last[int(t)] == v
