"""Tests for Thanos-style downsampling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.telemetry.downsample import downsample, reconstruct
from repro.telemetry.timeseries import TimeSeries


def test_basic_windows():
    series = TimeSeries.regular(0, 10, [1, 2, 3, 4, 5, 6])
    chunks = downsample(series, 30)
    assert len(chunks) == 2
    assert chunks[0].count == 3
    assert chunks[0].mean == pytest.approx(2.0)
    assert chunks[1].minimum == 4
    assert chunks[1].maximum == 6


def test_window_alignment():
    series = TimeSeries([35, 45, 65], [1.0, 2.0, 3.0])
    chunks = downsample(series, 30)
    assert [c.start for c in chunks] == [30, 60]


def test_empty_series():
    assert downsample(TimeSeries.empty(), 10) == []


def test_invalid_window():
    with pytest.raises(ValueError):
        downsample(TimeSeries.regular(0, 1, [1]), 0)


def test_reconstruct_mean():
    series = TimeSeries.regular(0, 10, [1, 3, 10, 20])
    coarse = reconstruct(downsample(series, 20), "mean")
    assert list(coarse.values) == [2.0, 15.0]


def test_reconstruct_unknown_field():
    with pytest.raises(ValueError):
        reconstruct([], "bogus")


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    window=st.integers(min_value=1, max_value=1000),
)
def test_property_downsample_preserves_count_and_extremes(values, window):
    series = TimeSeries.regular(0, 7, values)
    chunks = downsample(series, window)
    assert sum(c.count for c in chunks) == len(values)
    assert min(c.minimum for c in chunks) == pytest.approx(min(values))
    assert max(c.maximum for c in chunks) == pytest.approx(max(values))
    total = sum(c.total for c in chunks)
    assert total == pytest.approx(np.sum(np.asarray(values)), rel=1e-9, abs=1e-6)
