"""Tests for Thanos-style downsampling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.telemetry.downsample import downsample, reconstruct
from repro.telemetry.timeseries import STALE, TimeSeries


def test_basic_windows():
    series = TimeSeries.regular(0, 10, [1, 2, 3, 4, 5, 6])
    chunks = downsample(series, 30)
    assert len(chunks) == 2
    assert chunks[0].count == 3
    assert chunks[0].mean == pytest.approx(2.0)
    assert chunks[1].minimum == 4
    assert chunks[1].maximum == 6


def test_window_alignment():
    series = TimeSeries([35, 45, 65], [1.0, 2.0, 3.0])
    chunks = downsample(series, 30)
    assert [c.start for c in chunks] == [30, 60]


def test_empty_series():
    assert downsample(TimeSeries.empty(), 10) == []


def test_invalid_window():
    with pytest.raises(ValueError):
        downsample(TimeSeries.regular(0, 1, [1]), 0)


def test_reconstruct_mean():
    series = TimeSeries.regular(0, 10, [1, 3, 10, 20])
    coarse = reconstruct(downsample(series, 20), "mean")
    assert list(coarse.values) == [2.0, 15.0]


def test_reconstruct_unknown_field():
    with pytest.raises(ValueError):
        reconstruct([], "bogus")


def test_single_sample_windows():
    # Samples 2*window apart: every window holds exactly one sample, and
    # each aggregate collapses to that sample's value.
    series = TimeSeries([0.0, 60.0, 120.0], [5.0, -1.5, 8.0])
    chunks = downsample(series, 30)
    assert [c.start for c in chunks] == [0.0, 60.0, 120.0]
    for chunk, value in zip(chunks, [5.0, -1.5, 8.0]):
        assert chunk.count == 1
        assert chunk.mean == chunk.minimum == chunk.maximum == chunk.total == value
        assert chunk.stale_count == 0


def test_all_stale_series_keeps_nan_aggregates():
    series = TimeSeries([0.0, 10.0, 20.0], [STALE, STALE, STALE])
    chunks = downsample(series, 30)
    assert len(chunks) == 1
    chunk = chunks[0]
    assert chunk.count == 0
    assert chunk.stale_count == 3
    assert np.isnan(chunk.mean)
    assert np.isnan(chunk.minimum)
    assert np.isnan(chunk.maximum)
    assert chunk.total == 0.0


def test_nan_run_straddling_window_boundary():
    # A stale run covering the end of window 0 and the start of window 1
    # must be split per-window, never attributed to a neighbour.
    series = TimeSeries(
        [0.0, 10.0, 20.0, 30.0, 40.0, 50.0],
        [1.0, STALE, STALE, STALE, 2.0, 3.0],
    )
    chunks = downsample(series, 30)
    assert [c.start for c in chunks] == [0.0, 30.0]
    assert (chunks[0].count, chunks[0].stale_count) == (1, 2)
    assert (chunks[1].count, chunks[1].stale_count) == (2, 1)
    assert chunks[0].mean == 1.0
    assert chunks[1].mean == pytest.approx(2.5)


def test_stale_only_window_between_observed_windows():
    series = TimeSeries(
        [0.0, 30.0, 40.0, 60.0],
        [1.0, STALE, STALE, 4.0],
    )
    chunks = downsample(series, 30)
    assert [c.count for c in chunks] == [1, 0, 1]
    assert [c.stale_count for c in chunks] == [0, 2, 0]
    # Reconstructing the mean keeps the stale window as NaN, preserving
    # the "scraped but never observed" hole through the round trip.
    coarse = reconstruct(chunks, "mean")
    assert coarse.values[0] == 1.0
    assert np.isnan(coarse.values[1])
    assert coarse.values[2] == 4.0


def test_reconstruct_count_of_stale_only_window_is_zero():
    series = TimeSeries([0.0, 30.0], [STALE, 7.0])
    coarse = reconstruct(downsample(series, 30), "count")
    assert list(coarse.values) == [0.0, 1.0]


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    window=st.integers(min_value=1, max_value=1000),
)
def test_property_downsample_preserves_count_and_extremes(values, window):
    series = TimeSeries.regular(0, 7, values)
    chunks = downsample(series, window)
    assert sum(c.count for c in chunks) == len(values)
    assert min(c.minimum for c in chunks) == pytest.approx(min(values))
    assert max(c.maximum for c in chunks) == pytest.approx(max(values))
    total = sum(c.total for c in chunks)
    assert total == pytest.approx(np.sum(np.asarray(values)), rel=1e-9, abs=1e-6)
