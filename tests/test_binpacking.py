"""Tests for the bin-packing heuristics, including classic guarantees."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.baselines.binpacking import (
    Bin,
    Item,
    best_fit,
    best_fit_decreasing,
    first_fit,
    first_fit_decreasing,
    next_fit,
    pack,
    worst_fit,
)
from repro.infrastructure.capacity import Capacity

BIN = Capacity(vcpus=10, memory_mb=10_000, disk_gb=100)


def item(item_id, vcpus, mem=0.0, disk=0.0) -> Item:
    return Item(item_id, Capacity(vcpus=vcpus, memory_mb=mem, disk_gb=disk))


class TestBin:
    def test_add_updates_used(self):
        b = Bin("b", BIN)
        b.add(item("i", 4))
        assert b.used.vcpus == 4
        assert b.remaining().vcpus == 6

    def test_add_overflow_rejected(self):
        b = Bin("b", BIN)
        with pytest.raises(ValueError):
            b.add(item("i", 11))

    def test_fill_fraction_dominant(self):
        b = Bin("b", BIN)
        b.add(item("i", 2, mem=9000))
        assert b.fill_fraction() == pytest.approx(0.9)


class TestHeuristics:
    def test_first_fit_earliest_bin(self):
        result = first_fit([item("a", 6), item("b", 6), item("c", 4)], BIN)
        assignment = result.assignment()
        # c fits back into bin 0 next to a.
        assert assignment["c"] == assignment["a"]

    def test_best_fit_picks_tightest(self):
        # Bins end up at 6/10 and 8/10; a 2-sized item best-fits the 8 bin.
        result = best_fit([item("a", 6), item("b", 8), item("c", 2)], BIN)
        assignment = result.assignment()
        assert assignment["c"] == assignment["b"]

    def test_worst_fit_picks_emptiest(self):
        result = worst_fit([item("a", 6), item("b", 8), item("c", 2)], BIN)
        assignment = result.assignment()
        assert assignment["c"] == assignment["a"]

    def test_next_fit_never_looks_back(self):
        result = next_fit([item("a", 6), item("b", 6), item("c", 4)], BIN)
        # b opened bin 1; c fits there, bin 0 is never revisited.
        assignment = result.assignment()
        assert assignment["c"] == assignment["b"]
        assert result.bins_used == 2

    def test_ffd_beats_ff_on_adversarial_input(self):
        # Classic: small items first makes First-Fit waste bins.
        items = [item(f"s{i}", 3) for i in range(6)] + [item(f"b{i}", 7) for i in range(6)]
        ff = first_fit(items, BIN)
        ffd = first_fit_decreasing(items, BIN)
        assert ffd.bins_used <= ff.bins_used
        assert ffd.bins_used == 6  # 7+3 pairs: provably optimal

    def test_bfd_optimal_on_pairable_input(self):
        items = [item(f"a{i}", 7) for i in range(4)] + [item(f"b{i}", 3) for i in range(4)]
        assert best_fit_decreasing(items, BIN).bins_used == 4

    def test_oversized_item_unplaced(self):
        result = first_fit([item("huge", 11)], BIN)
        assert result.bins_used == 0
        assert [i.item_id for i in result.unplaced] == ["huge"]

    def test_max_bins_limits_and_reports_unplaced(self):
        items = [item(f"i{i}", 10) for i in range(5)]
        result = first_fit(items, BIN, max_bins=3)
        assert result.bins_used == 3
        assert len(result.unplaced) == 2

    def test_multi_dimensional_constraint(self):
        # CPU fits everywhere, memory forces a second bin.
        result = first_fit([item("a", 1, mem=9000), item("b", 1, mem=9000)], BIN)
        assert result.bins_used == 2

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            pack([], BIN, rule="magic")

    def test_empty_input(self):
        result = first_fit([], BIN)
        assert result.bins_used == 0
        assert result.unplaced == []


_items = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=1, max_value=10_000),
    ),
    min_size=1,
    max_size=50,
)


@pytest.mark.parametrize("algo", [first_fit, best_fit, worst_fit, next_fit,
                                  first_fit_decreasing, best_fit_decreasing])
@given(raw=_items)
def test_property_packing_invariants(algo, raw):
    """No bin overflows; every item is placed exactly once or unplaced."""
    items = [item(f"i{k}", v, mem=m) for k, (v, m) in enumerate(raw)]
    result = algo(items, BIN)
    placed_ids = []
    for b in result.bins:
        assert b.used.fits_within(b.capacity)
        total = Capacity()
        for it in b.items:
            total = total + it.size
            placed_ids.append(it.item_id)
        assert total.vcpus == pytest.approx(b.used.vcpus)
    all_ids = placed_ids + [i.item_id for i in result.unplaced]
    assert sorted(all_ids) == sorted(i.item_id for i in items)
    assert len(placed_ids) == len(set(placed_ids))


@given(raw=_items)
def test_property_ffd_within_classic_bound(raw):
    """FFD uses at most 11/9 * OPT + 1 bins; check against the size bound."""
    items = [item(f"i{k}", v) for k, (v, _m) in enumerate(raw)]
    result = first_fit_decreasing(items, BIN)
    lower_bound = int(np.ceil(sum(i.size.vcpus for i in items) / BIN.vcpus))
    assert result.bins_used <= np.ceil(11 / 9 * lower_bound) + 1


@given(raw=_items)
def test_property_next_fit_never_better_than_first_fit(raw):
    items = [item(f"i{k}", v) for k, (v, _m) in enumerate(raw)]
    assert first_fit(items, BIN).bins_used <= next_fit(items, BIN).bins_used
