"""Tests for the Nova-style scheduler filters."""

import pytest

from repro.infrastructure.flavors import Flavor
from repro.scheduler.filters import (
    AggregateInstanceExtraSpecsFilter,
    AllHostsFilter,
    AvailabilityZoneFilter,
    ComputeFilter,
    DiskFilter,
    MaintenanceFilter,
    NumInstancesFilter,
    RamFilter,
    RetryFilter,
    TenantIsolationFilter,
    VCpuFilter,
    default_filters,
)
from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec


def host(**kwargs) -> HostState:
    defaults = dict(
        host_id="h1",
        az="az1",
        free_vcpus=100,
        free_ram_mb=1024 * 1024,
        free_disk_gb=10_000,
        total_vcpus=200,
        total_ram_mb=2048 * 1024,
        total_disk_gb=20_000,
    )
    defaults.update(kwargs)
    return HostState(**defaults)


def spec(vcpus=4, ram_gib=16, disk_gb=50, **kwargs) -> RequestSpec:
    extra = kwargs.pop("extra_specs", ())
    return RequestSpec(
        vm_id="v1",
        flavor=Flavor("f", vcpus=vcpus, ram_gib=ram_gib, disk_gb=disk_gb,
                      extra_specs=extra),
        **kwargs,
    )


class TestResourceFilters:
    def test_all_hosts_filter_passes_everything(self):
        assert AllHostsFilter().passes(host(enabled=False, free_vcpus=0), spec())

    def test_compute_filter_checks_cpu_and_memory(self):
        flt = ComputeFilter()
        assert flt.passes(host(), spec())
        assert not flt.passes(host(free_vcpus=3), spec(vcpus=4))
        assert not flt.passes(host(free_ram_mb=1), spec(ram_gib=16))
        assert not flt.passes(host(enabled=False), spec())

    def test_compute_filter_exact_fit_passes(self):
        assert ComputeFilter().passes(
            host(free_vcpus=4, free_ram_mb=16 * 1024), spec(vcpus=4, ram_gib=16)
        )

    def test_vcpu_and_ram_filters(self):
        assert VCpuFilter().passes(host(free_vcpus=4), spec(vcpus=4))
        assert not VCpuFilter().passes(host(free_vcpus=3.9), spec(vcpus=4))
        assert RamFilter().passes(host(), spec())
        assert not RamFilter().passes(host(free_ram_mb=0), spec())

    def test_disk_filter(self):
        assert DiskFilter().passes(host(free_disk_gb=50), spec(disk_gb=50))
        assert not DiskFilter().passes(host(free_disk_gb=49), spec(disk_gb=50))


class TestConstraintFilters:
    def test_az_filter(self):
        flt = AvailabilityZoneFilter()
        assert flt.passes(host(az="az1"), spec(availability_zone="az1"))
        assert not flt.passes(host(az="az2"), spec(availability_zone="az1"))
        assert flt.passes(host(az="az2"), spec())  # no AZ requested

    def test_aggregate_filter_two_way_exclusive(self):
        """§3.1: special-purpose BBs accept only matching flavors, and
        matching flavors only land there."""
        flt = AggregateInstanceExtraSpecsFilter()
        hana_xl_host = host(aggregate_class="hana_xl")
        plain_host = host(aggregate_class="")
        xl_spec = spec(extra_specs=(("aggregate_class", "hana_xl"),))
        assert flt.passes(hana_xl_host, xl_spec)
        assert not flt.passes(plain_host, xl_spec)
        assert not flt.passes(hana_xl_host, spec())
        assert flt.passes(plain_host, spec())

    def test_aggregate_filter_all_hana_classes_exclusive(self):
        """HANA aggregates (plain and XL) accept no general-purpose VMs."""
        flt = AggregateInstanceExtraSpecsFilter()
        assert not flt.passes(host(aggregate_class="hana"), spec())
        hana_spec = spec(extra_specs=(("aggregate_class", "hana"),))
        assert flt.passes(host(aggregate_class="hana"), hana_spec)
        assert not flt.passes(host(aggregate_class="hana_xl"), hana_spec)

    def test_tenant_isolation(self):
        flt = TenantIsolationFilter()
        open_host = host()
        locked = host(allowed_tenants=frozenset({"t1"}))
        assert flt.passes(open_host, spec(tenant="anyone"))
        assert flt.passes(locked, spec(tenant="t1"))
        assert not flt.passes(locked, spec(tenant="t2"))

    def test_maintenance_filter(self):
        assert not MaintenanceFilter().passes(host(enabled=False), spec())

    def test_num_instances_filter(self):
        flt = NumInstancesFilter(max_instances=2)
        assert flt.passes(host(num_instances=1), spec())
        assert not flt.passes(host(num_instances=2), spec())
        with pytest.raises(ValueError):
            NumInstancesFilter(max_instances=0)

    def test_retry_filter_excludes_failed_hosts(self):
        flt = RetryFilter()
        request = spec().excluding("h1")
        assert not flt.passes(host(host_id="h1"), request)
        assert flt.passes(host(host_id="h2"), request)


def test_filter_all_returns_survivors():
    hosts = [host(host_id="a", free_vcpus=2), host(host_id="b", free_vcpus=100)]
    out = ComputeFilter().filter_all(hosts, spec(vcpus=4))
    assert [h.host_id for h in out] == ["b"]


def test_default_filter_chain_order_and_content():
    names = [f.name for f in default_filters()]
    assert names[0] == "RetryFilter"
    assert "ComputeFilter" in names
    assert "AvailabilityZoneFilter" in names
    assert "AggregateInstanceExtraSpecsFilter" in names
