"""Tests for the free-resource heatmaps (Figs 5-7, 10-13)."""

import numpy as np
import pytest

from repro.core.heatmaps import free_resource_heatmap


class TestShapes:
    def test_node_level_dimensions(self, small_dataset):
        dc = small_dataset.datacenters()[0]
        heatmap = free_resource_heatmap(small_dataset, "cpu", dc_id=dc)
        n_nodes = len(small_dataset.nodes_in(dc_id=dc))
        assert heatmap.shape == (30, n_nodes)
        assert len(heatmap.columns) == n_nodes
        assert heatmap.level == "node"

    def test_bb_level_aggregation(self, small_dataset):
        dc = small_dataset.datacenters()[0]
        heatmap = free_resource_heatmap(
            small_dataset, "cpu", dc_id=dc, level="building_block"
        )
        dc_bbs = {
            str(b) for b in small_dataset.nodes_in(dc_id=dc)["bb_id"]
        }
        assert set(heatmap.columns) == dc_bbs

    def test_bb_scope(self, small_dataset):
        bb = small_dataset.building_blocks()[0]
        heatmap = free_resource_heatmap(small_dataset, "cpu", bb_id=bb)
        assert len(heatmap.columns) == len(small_dataset.nodes_in(bb_id=bb))

    def test_unknown_resource_raises(self, small_dataset):
        with pytest.raises(ValueError, match="unknown resource"):
            free_resource_heatmap(small_dataset, "gpu")

    def test_unknown_scope_raises(self, small_dataset):
        with pytest.raises(ValueError, match="no nodes"):
            free_resource_heatmap(small_dataset, "cpu", dc_id="ghost")

    def test_bad_level_raises(self, small_dataset):
        with pytest.raises(ValueError, match="level"):
            free_resource_heatmap(small_dataset, "cpu", level="rack")


class TestSemantics:
    def test_columns_sorted_most_free_first(self, small_dataset):
        """Paper convention: compute hosts sorted left to right from most
        to least free resources."""
        heatmap = free_resource_heatmap(small_dataset, "cpu")
        means = heatmap.column_means()
        finite = means[np.isfinite(means)]
        assert np.all(np.diff(finite) <= 1e-9)

    def test_values_are_percentages(self, small_dataset):
        for resource in ("cpu", "memory", "network_tx", "storage"):
            heatmap = free_resource_heatmap(small_dataset, resource)
            finite = heatmap.matrix[np.isfinite(heatmap.matrix)]
            assert finite.min() >= 0.0
            assert finite.max() <= 100.0

    def test_cpu_heatmap_shows_wide_spread(self, small_dataset):
        """Fig 5: some nodes <20% free while others exceed 90% free."""
        heatmap = free_resource_heatmap(small_dataset, "cpu")
        assert np.nanmin(heatmap.matrix) < 25.0
        assert np.nanmax(heatmap.matrix) > 90.0
        assert heatmap.spread() > 40.0

    def test_network_heatmaps_mostly_free(self, small_dataset):
        """Figs 11-12: network load notably below NIC capacity."""
        for resource in ("network_tx", "network_rx"):
            heatmap = free_resource_heatmap(small_dataset, resource)
            assert np.nanmin(heatmap.column_means()) > 90.0

    def test_memory_heatmap_bimodal(self, small_dataset):
        """Fig 10: nearly-full HANA hosts next to mostly-free ones."""
        heatmap = free_resource_heatmap(small_dataset, "memory")
        means = heatmap.column_means()
        assert np.mean(means < 25.0) >= 0.05
        assert np.mean(means > 60.0) >= 0.30

    def test_storage_heatmap_uneven(self, small_dataset):
        """Fig 13 shape at small scale: some hosts >90% free, a few using
        more than 30%, most in between (exact shares are asserted in the
        larger-scale benchmark)."""
        heatmap = free_resource_heatmap(small_dataset, "storage")
        means = heatmap.column_means()
        assert np.mean(means > 90.0) == pytest.approx(0.18, abs=0.15)
        assert np.mean(means < 70.0) == pytest.approx(0.07, abs=0.10)
        mid = np.mean((means >= 70.0) & (means <= 90.0))
        assert mid > 0.4

    def test_spread_empty_safe(self, small_dataset):
        heatmap = free_resource_heatmap(small_dataset, "cpu")
        assert heatmap.spread() >= 0.0
