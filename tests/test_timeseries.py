"""Tests for TimeSeries, including property-based resampling checks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.telemetry.timeseries import SECONDS_PER_DAY, TimeSeries


class TestConstruction:
    def test_regular_grid(self):
        ts = TimeSeries.regular(0, 10, [1, 2, 3])
        assert list(ts.timestamps) == [0, 10, 20]

    def test_regular_requires_positive_step(self):
        with pytest.raises(ValueError):
            TimeSeries.regular(0, 0, [1])

    def test_non_increasing_timestamps_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            TimeSeries([0, 0], [1, 2])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries([0, 1], [1])

    def test_empty(self):
        assert len(TimeSeries.empty()) == 0


class TestQueries:
    @pytest.fixture
    def series(self):
        return TimeSeries.regular(100, 10, [5.0, 1.0, 3.0, 9.0])

    def test_between_half_open(self, series):
        out = series.between(110, 130)
        assert list(out.timestamps) == [110, 120]

    def test_at_or_before(self, series):
        assert series.at_or_before(115) == 1.0
        assert series.at_or_before(100) == 5.0
        assert series.at_or_before(99) is None
        assert series.at_or_before(1e9) == 9.0

    def test_statistics(self, series):
        assert series.mean() == pytest.approx(4.5)
        assert series.max() == 9.0
        assert series.min() == 1.0
        assert series.percentile(50) == pytest.approx(4.0)

    def test_stats_of_empty_raise(self):
        empty = TimeSeries.empty()
        for method in (empty.mean, empty.max, empty.min):
            with pytest.raises(ValueError):
                method()

    def test_integral_trapezoid(self):
        series = TimeSeries([0, 10], [1.0, 3.0])
        assert series.integral() == pytest.approx(20.0)

    def test_add_aligns_on_common_timestamps(self):
        a = TimeSeries([0, 10, 20], [1, 1, 1])
        b = TimeSeries([10, 20, 30], [2, 2, 2])
        out = a + b
        assert list(out.timestamps) == [10, 20]
        assert list(out.values) == [3, 3]


class TestResample:
    def test_daily_mean(self):
        ts = np.asarray([0, 3600, SECONDS_PER_DAY, SECONDS_PER_DAY + 1])
        series = TimeSeries(ts, [1.0, 3.0, 10.0, 20.0])
        daily = series.daily("mean")
        assert list(daily.values) == [2.0, 15.0]

    def test_daily_respects_origin(self):
        series = TimeSeries([SECONDS_PER_DAY - 1, SECONDS_PER_DAY], [1.0, 5.0])
        daily = series.daily("mean", origin=0.0)
        assert len(daily) == 2

    def test_resample_aggregations(self):
        series = TimeSeries.regular(0, 1, [1, 2, 3, 4])
        assert list(series.resample(2, "max").values) == [2, 4]
        assert list(series.resample(2, "sum").values) == [3, 7]
        assert list(series.resample(2, "count").values) == [2, 2]

    def test_unknown_agg_raises(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            TimeSeries.regular(0, 1, [1]).resample(2, "bogus")

    def test_resample_empty(self):
        assert len(TimeSeries.empty().resample(10)) == 0

    def test_clip_and_map(self):
        series = TimeSeries.regular(0, 1, [-1, 0.5, 2])
        assert list(series.clip(0, 1).values) == [0, 0.5, 1]
        assert list(series.map(lambda v: v * 2).values) == [-2, 1.0, 4]


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    window=st.integers(min_value=1, max_value=5000),
)
def test_property_resample_mean_within_bounds(values, window):
    """Window means never exceed the original series' min/max."""
    series = TimeSeries.regular(0, 60, values)
    out = series.resample(window, "mean")
    assert out.values.min() >= series.min() - 1e-9
    assert out.values.max() <= series.max() + 1e-9


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    window=st.integers(min_value=1, max_value=5000),
)
def test_property_resample_sum_preserves_total(values, window):
    series = TimeSeries.regular(0, 60, values)
    out = series.resample(window, "sum")
    assert out.values.sum() == pytest.approx(series.values.sum(), rel=1e-9, abs=1e-6)


@given(
    values=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=100,
    )
)
def test_property_between_full_range_is_identity(values):
    series = TimeSeries.regular(0, 10, values)
    out = series.between(0, series.timestamps[-1] + 1)
    assert out == series
