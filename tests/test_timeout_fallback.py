"""The per-test timeout ceiling works with or without pytest-timeout.

``addopts`` passes ``--timeout=300``; when pytest-timeout is absent,
``tests/conftest.py`` registers a SIGALRM fallback for the same option.
These meta-tests spawn a real pytest subprocess on a throwaway test file
*under tests/* (so the repository conftest — and with it the fallback —
is in scope) and assert the ceiling actually kills a hung test.
"""

from __future__ import annotations

import shutil
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

TESTS_DIR = Path(__file__).resolve().parent

_SLEEPER = """\
import time


def test_sleeps_past_the_ceiling():
    time.sleep(2.0)
"""


def _run_probe(timeout_arg: str) -> subprocess.CompletedProcess:
    probe_dir = Path(
        tempfile.mkdtemp(prefix="_timeout_probe_", dir=TESTS_DIR)
    )
    try:
        probe = probe_dir / "test_probe_sleeper.py"
        probe.write_text(_SLEEPER)
        return subprocess.run(
            [
                sys.executable, "-m", "pytest", str(probe),
                "-p", "no:cacheprovider", "-q", timeout_arg,
            ],
            capture_output=True,
            text=True,
            timeout=60,
            cwd=TESTS_DIR.parent,
        )
    finally:
        shutil.rmtree(probe_dir, ignore_errors=True)


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs SIGALRM for the fallback"
)
def test_timeout_ceiling_kills_a_hung_test():
    result = _run_probe("--timeout=1")
    assert result.returncode != 0
    combined = result.stdout + result.stderr
    # pytest-timeout says "Timeout >1.0s"; the fallback names the ceiling.
    assert "ceiling" in combined or "Timeout" in combined


def test_timeout_option_is_always_accepted():
    """--timeout must parse whether the plugin or the fallback owns it."""
    result = _run_probe("--timeout=30")
    assert result.returncode == 0, result.stdout + result.stderr
