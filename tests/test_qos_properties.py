"""Property-based tests for NUMA placement and CPU pinning invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.infrastructure.flavors import Flavor
from repro.qos.numa import NumaTopology
from repro.qos.pinning import CpuPinningAllocator, PinningError

_flavors = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=64),  # vcpus
        st.integers(min_value=1, max_value=2048),  # ram GiB
    ),
    max_size=20,
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(specs=_flavors, sockets=st.integers(min_value=1, max_value=4))
def test_property_numa_reservations_bounded_and_reversible(specs, sockets):
    """However many VMs are placed: per-node reservations never exceed the
    node, totals match the placed set, and releasing everything restores a
    pristine topology."""
    topology = NumaTopology.symmetric(sockets, 128, 4096 * 1024)
    placed: list[str] = []
    expected_cores = 0
    for i, (vcpus, ram) in enumerate(specs):
        flavor = Flavor(f"f{i}", vcpus=vcpus, ram_gib=ram)
        try:
            topology.place(f"v{i}", flavor)
        except ValueError:
            continue
        placed.append(f"v{i}")
        expected_cores += vcpus
        for node in topology.nodes:
            assert 0 <= node.reserved_cores <= node.cores
            assert -1e-6 <= node.reserved_memory_mb <= node.memory_mb + 1e-6
    total_reserved = sum(n.reserved_cores for n in topology.nodes)
    assert total_reserved == expected_cores
    for vm_id in placed:
        topology.release(vm_id)
    assert all(n.reserved_cores == 0 for n in topology.nodes)
    assert all(n.reserved_memory_mb == pytest.approx(0.0) for n in topology.nodes)


@settings(max_examples=60, deadline=None)
@given(
    requests=st.lists(st.integers(min_value=1, max_value=40), max_size=15),
    total=st.integers(min_value=4, max_value=128),
)
def test_property_pinning_partition(requests, total):
    """Pinned sets are disjoint, inside the pinnable range, and shared +
    pinned + system cores always partition the node exactly."""
    allocator = CpuPinningAllocator(total_cores=total, reserved_system_cores=2)
    seen: set[int] = set()
    for i, vcpus in enumerate(requests):
        try:
            cores = allocator.pin(f"v{i}", vcpus)
        except PinningError:
            continue
        assert not (set(cores) & seen)
        assert all(2 <= c < total for c in cores)
        seen |= set(cores)
        assert allocator.pinned_cores + allocator.shared_cores + 2 == total
    assert len(seen) == allocator.pinned_cores
