"""Tests for the pack-vs-spread policy split (§3.2)."""

from repro.infrastructure.flavors import default_catalog
from repro.scheduler.policies import (
    pack_policy_weighers,
    spread_policy_weighers,
    weighers_for_flavor,
)
from repro.scheduler.weighers import RAMWeigher


def test_spread_weighers_positive_free_resource_multipliers():
    for weigher in spread_policy_weighers():
        assert weigher.multiplier > 0


def test_pack_weighers_negative_memory_multiplier():
    """§3.2: S/4HANA workloads are bin-packed to maximise memory use."""
    ram = [w for w in pack_policy_weighers() if isinstance(w, RAMWeigher)]
    assert len(ram) == 1
    assert ram[0].multiplier < 0


def test_pack_memory_dominates_cpu():
    weighers = {type(w).__name__: w for w in pack_policy_weighers()}
    assert abs(weighers["RAMWeigher"].multiplier) > abs(
        weighers["CPUWeigher"].multiplier
    )


def test_flavor_routing():
    catalog = default_catalog()
    hana = weighers_for_flavor(catalog.get("h_c32_m512"))
    general = weighers_for_flavor(catalog.get("g_c4_m16"))
    hana_ram = [w for w in hana if isinstance(w, RAMWeigher)][0]
    general_ram = [w for w in general if isinstance(w, RAMWeigher)][0]
    assert hana_ram.multiplier < 0 < general_ram.multiplier
