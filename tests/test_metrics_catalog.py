"""Tests for the Table 4 metric catalogue."""

import pytest

from repro.telemetry.metrics import (
    METRIC_CATALOG,
    NOVA_METRICS,
    VROPS_METRICS,
    get_metric,
    metric_table,
)

#: The exact metric names of Table 4.
PAPER_METRIC_NAMES = {
    "vrops_hostsystem_cpu_core_utilization_percentage",
    "vrops_hostsystem_cpu_contention_percentage",
    "vrops_hostsystem_cpu_ready_milliseconds",
    "vrops_hostsystem_memory_usage_percentage",
    "vrops_hostsystem_network_bytes_tx_kbps",
    "vrops_hostsystem_network_bytes_rx_kbps",
    "vrops_hostsystem_diskspace_usage_gigabytes",
    "vrops_virtualmachine_cpu_usage_ratio",
    "vrops_virtualmachine_memory_consumed_ratio",
    "openstack_compute_nodes_vcpus_gauge",
    "openstack_compute_nodes_vcpus_used_gauge",
    "openstack_compute_nodes_memory_mb_gauge",
    "openstack_compute_nodes_memory_mb_used_gauge",
    "openstack_compute_instances_total",
}


def test_catalog_matches_table4_exactly():
    assert {m.name for m in METRIC_CATALOG} == PAPER_METRIC_NAMES


def test_source_split():
    assert all(m.name.startswith("vrops_") for m in VROPS_METRICS)
    assert all(m.name.startswith("openstack_") for m in NOVA_METRICS)
    assert len(VROPS_METRICS) + len(NOVA_METRICS) == len(METRIC_CATALOG)


def test_sampling_within_paper_bounds():
    """§4: sampling granularity ranges from 30 to 300 seconds."""
    for metric in METRIC_CATALOG:
        assert 30 <= metric.sampling_seconds <= 300


def test_vm_metrics_are_ratios():
    for name in (
        "vrops_virtualmachine_cpu_usage_ratio",
        "vrops_virtualmachine_memory_consumed_ratio",
    ):
        metric = get_metric(name)
        assert metric.subsystem == "vm"
        assert metric.unit == "ratio"


def test_get_metric_unknown_raises():
    with pytest.raises(KeyError, match="unknown metric"):
        get_metric("nope")


def test_metric_table_rows():
    rows = metric_table()
    assert len(rows) == len(METRIC_CATALOG)
    assert all(set(r) >= {"metric", "subsystem", "resource", "description"} for r in rows)


def test_resources_covered():
    """The catalogue spans CPU, memory, network, storage, and inventory."""
    assert {m.resource for m in METRIC_CATALOG} == {
        "cpu", "memory", "network", "storage", "inventory",
    }
