"""Tests for the forecasting models and the proactive weigher."""

import numpy as np
import pytest

from repro.forecasting.models import (
    EwmaForecaster,
    HoltLinearForecaster,
    SeasonalNaiveForecaster,
    evaluate_forecaster,
)
from repro.forecasting.proactive import ForecastWeigher, forecast_host_load
from repro.infrastructure.flavors import Flavor
from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries


def _flat(level=40.0, n=100):
    return TimeSeries.regular(0, 300, np.full(n, level))


def _trending(start=10.0, slope=0.5, n=100):
    return TimeSeries.regular(0, 300, start + slope * np.arange(n))


class TestEwma:
    def test_flat_series_forecast_flat(self):
        forecast = EwmaForecaster().forecast(_flat(), horizon=5)
        assert np.allclose(forecast.values, 40.0)
        assert len(forecast) == 5

    def test_timestamps_extend_grid(self):
        forecast = EwmaForecaster().forecast(_flat(n=10), horizon=3)
        assert list(forecast.timestamps) == [3000, 3300, 3600]

    def test_recent_values_weighted_more(self):
        series = TimeSeries.regular(0, 300, [0.0] * 50 + [100.0] * 50)
        forecast = EwmaForecaster(alpha=0.5).forecast(series, 1)
        assert forecast.values[0] > 90

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=0)
        with pytest.raises(ValueError):
            EwmaForecaster().forecast(TimeSeries.empty(), 1)
        with pytest.raises(ValueError):
            EwmaForecaster().forecast(_flat(), 0)


class TestHolt:
    def test_captures_trend(self):
        """§5.1: some nodes show consistently increasing demand — Holt
        extrapolates that where EWMA lags behind."""
        series = _trending()
        holt = HoltLinearForecaster().forecast(series, 10)
        ewma = EwmaForecaster().forecast(series, 10)
        actual_next = 10.0 + 0.5 * (len(series) + 9)
        assert abs(holt.values[-1] - actual_next) < abs(ewma.values[-1] - actual_next)

    def test_flat_series_no_phantom_trend(self):
        forecast = HoltLinearForecaster().forecast(_flat(), 10)
        assert np.allclose(forecast.values, 40.0, atol=1.0)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            HoltLinearForecaster().forecast(TimeSeries.regular(0, 300, [1.0]), 1)


class TestSeasonalNaive:
    def test_repeats_daily_pattern(self):
        hours = np.arange(0, 3 * 86_400, 3600.0)
        values = 50 + 30 * np.sin(2 * np.pi * hours / 86_400)
        series = TimeSeries(hours, values)
        forecast = SeasonalNaiveForecaster(86_400).forecast(series, 6)
        for t, v in zip(forecast.timestamps, forecast.values):
            past = series.at_or_before(t - 86_400)
            assert v == pytest.approx(past)

    def test_short_series_rejected(self):
        with pytest.raises(ValueError, match="shorter than one season"):
            SeasonalNaiveForecaster(86_400).forecast(_flat(n=10), 1)


class TestBacktest:
    def test_seasonal_beats_ewma_on_diurnal_load(self):
        hours = np.arange(0, 7 * 86_400, 1800.0)
        values = 50 + 40 * np.sin(2 * np.pi * hours / 86_400)
        series = TimeSeries(hours, values)
        mae_seasonal = evaluate_forecaster(SeasonalNaiveForecaster(86_400), series, 24)
        mae_ewma = evaluate_forecaster(EwmaForecaster(), series, 24)
        assert mae_seasonal < mae_ewma

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            evaluate_forecaster(EwmaForecaster(), _flat(n=5), 10)


class TestProactive:
    def _store(self):
        store = MetricStore()
        metric = "vrops_hostsystem_cpu_core_utilization_percentage"
        # bb-hot trends up; bb-cool is flat low.
        store.append_series(
            metric,
            {"hostsystem": "n1", "building_block": "bb-hot"},
            _trending(start=40, slope=0.4, n=60),
        )
        store.append_series(
            metric,
            {"hostsystem": "n2", "building_block": "bb-cool"},
            _flat(level=20, n=60),
        )
        return store

    def test_forecast_host_load_ranks_trending_host_hot(self):
        peaks = forecast_host_load(self._store(), horizon_steps=12)
        assert peaks["bb-hot"] > peaks["bb-cool"]
        assert peaks["bb-hot"] > 60  # extrapolated beyond the last sample

    def test_weigher_prefers_cool_forecast(self):
        peaks = {"bb-hot": 80.0, "bb-cool": 25.0}
        weigher = ForecastWeigher(peaks)
        spec = RequestSpec(vm_id="v", flavor=Flavor("f", 4, 16))
        hot = HostState(host_id="bb-hot")
        cool = HostState(host_id="bb-cool")
        assert weigher.raw_weight(cool, spec) > weigher.raw_weight(hot, spec)

    def test_forecast_values_clipped_to_percent(self):
        peaks = forecast_host_load(self._store(), horizon_steps=500)
        assert peaks["bb-hot"] <= 100.0
