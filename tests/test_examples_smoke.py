"""Smoke tests: the shipped examples must keep running end to end.

Only the fast examples run here (the dataset-generating ones are covered
by the CLI and integration tests); each is executed as a subprocess, the
way a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "scheduler_comparison.py",
        "contention_analysis.py",
        "rightsizing_report.py",
        "dataset_export.py",
        "qos_placement.py",
        "capacity_energy.py",
        "rebalancing.py",
        "fault_scenarios.py",
    } <= names


def test_fault_scenarios_example_runs_deterministically():
    first = _run("fault_scenarios.py", "--days", "0.25", "--json-only")
    assert first.returncode == 0, first.stderr
    second = _run("fault_scenarios.py", "--days", "0.25", "--json-only")
    assert first.stdout == second.stdout  # same seed, byte-identical report


def test_rebalancing_example_runs():
    result = _run("rebalancing.py")
    assert result.returncode == 0, result.stderr
    assert "Rebalancing:" in result.stdout
    assert "imbalance" in result.stdout


def test_scheduler_comparison_example_runs():
    result = _run("scheduler_comparison.py")
    assert result.returncode == 0, result.stderr
    assert "share on hot hosts" in result.stdout
    assert "activated nodes" in result.stdout


@pytest.mark.parametrize("name", ["quickstart.py"])
def test_quickstart_runs_at_tiny_scale(name):
    result = _run(name, "--scale", "0.01", "--sampling", "21600")
    assert result.returncode == 0, result.stderr
    assert "VM utilisation classes" in result.stdout
    assert "paper" in result.stdout
