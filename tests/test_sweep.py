"""Tests for the sharded scenario-sweep engine (repro.sweep).

The load-bearing property throughout: the merged SweepReport is a pure
function of the grid — independent of worker count, shard arrival
order, crashes-with-retry, and resume — enforced byte-for-byte on the
canonical rendering.
"""

import json
import random

import pytest

from repro.cli import main
from repro.faults.crashpoints import CrashInjector, CrashSpec, SimulatedCrash
from repro.recovery.journal import read_journal
from repro.reporting import canonical_bytes
from repro.sweep import (
    SweepResumeError,
    grid_from_dict,
    load_resume,
    merge_records,
    run_sweep,
    run_sweep_inline,
)
from repro.sweep.worker import TEST_FAULT_ENV

#: Cheap enough that one cell runs in tens of milliseconds.
MICRO_BASE = {
    "duration_days": 0.02,
    "building_blocks": 2,
    "nodes_per_bb": 2,
    "initial_vms": 6,
    "arrival_rate_per_hour": 2.0,
}


def micro_grid(seeds=(1, 2), axes=None):
    return grid_from_dict(
        {
            "base": dict(MICRO_BASE),
            "seeds": list(seeds),
            "axes": axes
            if axes is not None
            else {"arrival_rate_per_hour": [2.0, 4.0]},
        }
    )


@pytest.fixture(scope="module")
def micro_report():
    """One sequential execution of the 4-cell micro grid, reused widely."""
    grid = micro_grid()
    return grid, run_sweep_inline(grid)


class TestGrid:
    def test_expansion_order_and_ids(self):
        grid = micro_grid()
        assert [c.cell_id for c in grid.cells] == [
            "arrival_rate_per_hour=2.0/seed=1",
            "arrival_rate_per_hour=2.0/seed=2",
            "arrival_rate_per_hour=4.0/seed=1",
            "arrival_rate_per_hour=4.0/seed=2",
        ]
        assert grid.groups == [
            "arrival_rate_per_hour=2.0",
            "arrival_rate_per_hour=4.0",
        ]

    def test_no_axes_yields_seed_cells(self):
        grid = micro_grid(seeds=(5,), axes={})
        assert [c.cell_id for c in grid.cells] == ["seed=5"]
        assert grid.cells[0].group == "(base)"

    def test_section_axis_merges_into_base_section(self):
        grid = grid_from_dict(
            {
                "base": {
                    **MICRO_BASE,
                    "faults": {"seed": 3, "host_failure_rate_per_day": 2.0},
                },
                "seeds": [1],
                "axes": {"faults": [{"scrape_gap_probability": 0.5}]},
            }
        )
        faults = grid.cells[0].spec.faults
        # The axis dict overlays the base section instead of replacing it.
        assert faults.scrape_gap_probability == 0.5
        assert faults.host_failure_rate_per_day == 2.0

    def test_null_axis_value_removes_section(self):
        grid = grid_from_dict(
            {
                "base": {**MICRO_BASE, "faults": {"seed": 3}},
                "seeds": [1],
                "axes": {"faults": [None, {"seed": 4}]},
            }
        )
        assert grid.cells[0].spec.faults is None
        assert grid.cells[1].spec.faults.seed == 4

    def test_unknown_grid_key_rejected(self):
        with pytest.raises(ValueError, match="axs"):
            grid_from_dict({"axs": {}})

    def test_bad_cell_error_names_the_cell(self):
        with pytest.raises(ValueError, match=r"seed=1.*topolgy"):
            grid_from_dict(
                {"seeds": [1], "axes": {"topolgy": ["lab"]}}
            )

    @pytest.mark.parametrize(
        "doc",
        [
            {"seeds": []},
            {"seeds": [1, 1]},
            {"seeds": ["x"]},
            {"seeds": [True]},
            {"axes": {"seed": []}},
        ],
    )
    def test_bad_seeds_or_axes_rejected(self, doc):
        with pytest.raises(ValueError):
            grid_from_dict(doc)

    def test_sha_tracks_grid_content(self):
        assert micro_grid().sha256 == micro_grid().sha256
        assert micro_grid().sha256 != micro_grid(seeds=(1, 3)).sha256


class TestMergeProperty:
    """merge(shuffled) == merge(ordered) == sequential, for seeds 1-5."""

    @pytest.mark.parametrize("shuffle_seed", [1, 2, 3, 4, 5])
    def test_merge_is_order_independent(self, micro_report, shuffle_seed):
        grid, sequential = micro_report
        records = [dict(r) for r in sequential.cells]
        shuffled = list(records)
        random.Random(shuffle_seed).shuffle(shuffled)
        ordered = merge_records(grid.sha256, records, [])
        permuted = merge_records(grid.sha256, shuffled, [])
        assert (
            canonical_bytes(permuted)
            == canonical_bytes(ordered)
            == canonical_bytes(sequential)
        )

    def test_failure_order_is_canonicalised_too(self, micro_report):
        from repro.sweep.report import ShardFailure

        grid, sequential = micro_report
        failures = [
            ShardFailure("z-cell", "worker exited with code 3", 2),
            ShardFailure("a-cell", "shard deadline exceeded (2s)", 2),
        ]
        one = merge_records(grid.sha256, list(sequential.cells), failures)
        other = merge_records(
            grid.sha256, list(sequential.cells), list(reversed(failures))
        )
        assert canonical_bytes(one) == canonical_bytes(other)
        assert [f.cell_id for f in one.failures] == ["a-cell", "z-cell"]


class TestEngine:
    def test_worker_count_does_not_change_bytes(self, micro_report):
        grid, sequential = micro_report
        one, _ = run_sweep(grid, workers=1)
        three, _ = run_sweep(grid, workers=3)
        assert (
            canonical_bytes(one)
            == canonical_bytes(three)
            == canonical_bytes(sequential)
        )

    def test_run_stats_reflect_execution(self, micro_report):
        grid, _ = micro_report
        _, stats = run_sweep(grid, workers=2)
        assert stats.cells_total == 4
        assert stats.cells_run == 4
        assert stats.cells_resumed == 0
        assert stats.cells_failed == 0
        assert stats.scenarios_per_hour > 0
        assert "4/4 cells" in stats.render()

    def test_persistent_crash_is_structured_failure(
        self, micro_report, monkeypatch
    ):
        grid, _ = micro_report
        victim = grid.cells[1].cell_id
        monkeypatch.setenv(TEST_FAULT_ENV, f"crash|{victim}")
        report, stats = run_sweep(grid, workers=2)
        assert not report.ok
        assert len(report.cells) == 3
        (failure,) = report.failures
        assert failure.cell_id == victim
        assert failure.attempts == 2
        assert "exited with code 3" in failure.reason
        assert stats.retries == 1

    def test_crash_once_retry_recovers_identical_bytes(
        self, micro_report, monkeypatch, tmp_path
    ):
        grid, sequential = micro_report
        victim = grid.cells[0].cell_id
        monkeypatch.setenv(
            TEST_FAULT_ENV, f"crash-once|{victim}|{tmp_path / 'sentinel'}"
        )
        report, stats = run_sweep(grid, workers=2)
        assert report.ok
        assert stats.retries == 1
        assert canonical_bytes(report) == canonical_bytes(sequential)

    def test_hung_shard_killed_at_deadline(self, micro_report, monkeypatch):
        grid, _ = micro_report
        victim = grid.cells[2].cell_id
        monkeypatch.setenv(TEST_FAULT_ENV, f"hang|{victim}")
        report, _ = run_sweep(grid, workers=2, deadline_s=1.5)
        (failure,) = report.failures
        assert failure.cell_id == victim
        assert "deadline exceeded (1.5s)" in failure.reason
        assert failure.attempts == 2

    def test_deterministic_exception_not_retried(
        self, micro_report, monkeypatch
    ):
        grid, _ = micro_report
        victim = grid.cells[0].cell_id
        monkeypatch.setenv(TEST_FAULT_ENV, f"error|{victim}")
        report, stats = run_sweep(grid, workers=1)
        (failure,) = report.failures
        assert failure.attempts == 1
        assert "RuntimeError" in failure.reason
        assert stats.retries == 0


class TestResume:
    def test_crash_mid_sweep_resumes_without_rerunning(
        self, micro_report, tmp_path
    ):
        """Kill the sweep driver at a shard boundary, then resume.

        Reuses the crash-point injector from repro.faults.crashpoints as
        the progress barrier: each completed shard fires one op, and the
        injector dies after the second — exactly a driver crash between
        journal appends.
        """
        grid, sequential = micro_report
        journal = tmp_path / "sweep.journal"
        injector = CrashInjector(CrashSpec("post-journal", at_op=1))

        def barrier(message: str) -> None:
            if message.startswith("done"):
                injector("pre-op")
                injector("post-journal")

        with pytest.raises(SimulatedCrash):
            run_sweep(
                grid, workers=1, journal_path=journal, progress=barrier
            )
        completed = load_resume(journal, grid)
        assert len(completed) == 2
        report, stats = run_sweep(grid, workers=2, journal_path=journal)
        assert stats.cells_resumed == 2
        assert stats.cells_run == 2
        assert canonical_bytes(report) == canonical_bytes(sequential)

    def test_resume_refuses_a_different_grid(self, micro_report, tmp_path):
        grid, _ = micro_report
        journal = tmp_path / "sweep.journal"
        run_sweep(grid, workers=1, journal_path=journal)
        other = micro_grid(seeds=(1, 3))
        with pytest.raises(SweepResumeError, match="different grid|not this grid"):
            run_sweep(other, workers=1, journal_path=journal)

    def test_torn_tail_is_tolerated_on_resume(self, micro_report, tmp_path):
        grid, sequential = micro_report
        journal = tmp_path / "sweep.journal"
        run_sweep(grid, workers=1, journal_path=journal)
        with open(journal, "ab") as fh:
            fh.write(b"\x99\x12torn")
        report, stats = run_sweep(grid, workers=1, journal_path=journal)
        assert stats.cells_resumed == 4
        assert canonical_bytes(report) == canonical_bytes(sequential)
        assert not read_journal(journal).torn

    def test_completed_sweep_resume_runs_nothing(self, micro_report, tmp_path):
        grid, _ = micro_report
        journal = tmp_path / "sweep.journal"
        first, _ = run_sweep(grid, workers=2, journal_path=journal)
        again, stats = run_sweep(grid, workers=2, journal_path=journal)
        assert stats.cells_run == 0
        assert stats.cells_resumed == 4
        assert canonical_bytes(again) == canonical_bytes(first)


class TestCli:
    def _grid_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {
                    "base": dict(MICRO_BASE),
                    "seeds": [1],
                    "axes": {"arrival_rate_per_hour": [2.0, 4.0]},
                }
            )
        )
        return str(path)

    def test_sweep_out_is_byte_stable_across_workers(self, tmp_path, capsys):
        grid_file = self._grid_file(tmp_path)
        out1 = tmp_path / "one.json"
        out2 = tmp_path / "two.json"
        assert (
            main(
                ["sweep", "--config", grid_file, "--workers", "1",
                 "--out", str(out1), "--json-only"]
            )
            == 0
        )
        assert (
            main(
                ["sweep", "--config", grid_file, "--workers", "2",
                 "--out", str(out2), "--json-only"]
            )
            == 0
        )
        assert out1.read_bytes() == out2.read_bytes()
        doc = json.loads(out1.read_text())
        assert doc["ok"] is True
        assert doc["cells_total"] == 2
        assert [c["cell_id"] for c in doc["cells"]] == sorted(
            c["cell_id"] for c in doc["cells"]
        )

    def test_sweep_stdout_equals_out_file(self, tmp_path, capsys):
        grid_file = self._grid_file(tmp_path)
        out = tmp_path / "sweep.json"
        main(["sweep", "--config", grid_file, "--out", str(out), "--json-only"])
        capsys.readouterr()
        main(["sweep", "--config", grid_file, "--json-only"])
        assert capsys.readouterr().out == out.read_text()

    def test_sweep_bad_grid_exits_2(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text('{"axes": {"topolgy": ["lab"]}}')
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--config", str(path)])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "topolgy" in err
        assert "Traceback" not in err

    def test_sweep_bad_workers_exits_2(self, tmp_path, capsys):
        grid_file = self._grid_file(tmp_path)
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--config", grid_file, "--workers", "0"])
        assert exc.value.code == 2

    def test_sweep_failed_shard_exits_1(self, tmp_path, capsys, monkeypatch):
        grid_file = self._grid_file(tmp_path)
        monkeypatch.setenv(TEST_FAULT_ENV, "error|arrival_rate_per_hour=2.0/seed=1")
        code = main(["sweep", "--config", grid_file, "--json-only"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["failures"][0]["cell_id"] == "arrival_rate_per_hour=2.0/seed=1"
