"""Unit tests for the fault-injection building blocks (repro.faults)."""

import json

import numpy as np
import pytest

from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultReport,
    MigrationFaultModel,
    TelemetryFaultModel,
)
from repro.faults.report import DeadLetter
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import HOST_FAIL
from tests.conftest import make_node


class TestFaultConfig:
    def test_defaults_inject_nothing(self):
        config = FaultConfig()
        assert not config.any_faults

    def test_any_faults_flips_per_class(self):
        assert FaultConfig(host_failure_rate_per_day=1.0).any_faults
        assert FaultConfig(migration_abort_fraction=0.1).any_faults
        assert FaultConfig(scrape_gap_probability=0.1).any_faults
        assert FaultConfig(stale_node_probability=0.1).any_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"host_failure_rate_per_day": -1.0},
            {"repair_time_mean_s": 0.0},
            {"repair_time_min_s": -1.0},
            {"migration_abort_fraction": 1.5},
            {"scrape_gap_probability": -0.1},
            {"stale_node_probability": 2.0},
            {"evac_max_retries": 0},
            {"evac_backoff_factor": 0.5},
            {"evac_backoff_base_s": -1.0},
            {"max_concurrent_evacuations": 0},
            {"evac_batch_spacing_s": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)


class TestFaultInjector:
    def _collect_failure_times(self, seed: int) -> list[float]:
        engine = SimulationEngine()
        times: list[float] = []
        engine.on(HOST_FAIL, lambda eng, ev: times.append(eng.now))
        injector = FaultInjector(
            FaultConfig(seed=seed, host_failure_rate_per_day=24.0)
        )
        injector.schedule_host_failures(engine, 0.0, 86_400.0)
        engine.run()
        return times

    def test_same_seed_same_failure_times(self):
        assert self._collect_failure_times(5) == self._collect_failure_times(5)

    def test_different_seed_different_failure_times(self):
        assert self._collect_failure_times(5) != self._collect_failure_times(6)

    def test_zero_rate_schedules_nothing(self):
        engine = SimulationEngine()
        injector = FaultInjector(FaultConfig(host_failure_rate_per_day=0.0))
        assert injector.schedule_host_failures(engine, 0.0, 86_400.0) == 0
        assert engine.pending == 0

    def test_scheduled_count_matches_events(self):
        engine = SimulationEngine()
        engine.on(HOST_FAIL, lambda eng, ev: None)
        injector = FaultInjector(
            FaultConfig(seed=3, host_failure_rate_per_day=48.0)
        )
        n = injector.schedule_host_failures(engine, 0.0, 86_400.0)
        assert n == engine.pending
        assert injector.scheduled_failures == n
        assert n > 0

    def test_pick_victim_only_healthy(self):
        injector = FaultInjector(FaultConfig(seed=1))
        nodes = [make_node(f"n{i}") for i in range(4)]
        nodes[0].failed = True
        nodes[1].maintenance = True
        for _ in range(20):
            victim = injector.pick_victim(nodes)
            assert victim.node_id in {"n2", "n3"}

    def test_pick_victim_none_when_all_down(self):
        injector = FaultInjector(FaultConfig(seed=1))
        nodes = [make_node("n0"), make_node("n1")]
        for n in nodes:
            n.failed = True
        assert injector.pick_victim(nodes) is None

    def test_repair_time_floored_at_minimum(self):
        config = FaultConfig(seed=2, repair_time_mean_s=1.0, repair_time_min_s=600.0)
        injector = FaultInjector(config)
        draws = [injector.draw_repair_time() for _ in range(50)]
        assert all(d >= 600.0 for d in draws)


class TestMigrationFaultModel:
    def test_fraction_zero_never_aborts(self):
        model = MigrationFaultModel(abort_fraction=0.0, seed=1)
        assert all(model.attempt(f"vm{i}", "a", "b") for i in range(20))
        assert model.attempted == 20
        assert model.aborted == 0
        assert model.abort_log == []

    def test_fraction_one_always_aborts_and_logs(self):
        model = MigrationFaultModel(abort_fraction=1.0, seed=1)
        assert not model.attempt("vm0", "src", "dst")
        assert model.aborted == 1
        entry = model.abort_log[0]
        assert (entry.vm_id, entry.source, entry.target) == ("vm0", "src", "dst")

    def test_same_seed_same_decisions(self):
        a = MigrationFaultModel(abort_fraction=0.5, seed=9)
        b = MigrationFaultModel(abort_fraction=0.5, seed=9)
        decisions_a = [a.attempt(f"vm{i}", "s", "t") for i in range(40)]
        decisions_b = [b.attempt(f"vm{i}", "s", "t") for i in range(40)]
        assert decisions_a == decisions_b
        assert a.aborted == b.aborted > 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            MigrationFaultModel(abort_fraction=1.5)


class TestTelemetryFaultModel:
    def test_zero_probabilities_inject_nothing(self):
        model = TelemetryFaultModel(seed=1)
        assert not any(model.scrape_missed() for _ in range(20))
        assert not any(model.node_is_stale(f"n{i}") for i in range(20))
        assert model.gaps == 0
        assert model.stale_scrapes == 0

    def test_probability_one_always_fires_and_counts(self):
        model = TelemetryFaultModel(gap_probability=1.0, stale_probability=1.0, seed=1)
        assert model.scrape_missed()
        assert model.node_is_stale("n0")
        assert model.gaps == 1
        assert model.stale_scrapes == 1

    def test_same_seed_same_draw_sequence(self):
        a = TelemetryFaultModel(gap_probability=0.4, stale_probability=0.3, seed=4)
        b = TelemetryFaultModel(gap_probability=0.4, stale_probability=0.3, seed=4)
        seq_a = [(a.scrape_missed(), a.node_is_stale("n")) for _ in range(30)]
        seq_b = [(b.scrape_missed(), b.node_is_stale("n")) for _ in range(30)]
        assert seq_a == seq_b

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            TelemetryFaultModel(gap_probability=-0.1)
        with pytest.raises(ValueError):
            TelemetryFaultModel(stale_probability=1.1)


class TestFaultReport:
    def test_record_evacuation_success_builds_histogram(self):
        report = FaultReport(seed=1)
        report.record_evacuation_success(latency_s=10.0, attempts=1)
        report.record_evacuation_success(latency_s=30.0, attempts=2)
        report.record_evacuation_success(latency_s=20.0, attempts=1)
        assert report.evacuations_succeeded == 3
        assert report.retry_histogram == {1: 2, 2: 1}
        summary = report.latency_summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(20.0)
        assert summary["max"] == 30.0

    def test_empty_latency_summary(self):
        summary = FaultReport().latency_summary()
        assert summary == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}

    def test_dead_letters_tracked_and_sorted_in_json(self):
        report = FaultReport()
        for vm_id in ("vm-b", "vm-a"):
            report.record_dead_letter(
                DeadLetter(
                    vm_id=vm_id,
                    failed_host="n0",
                    attempts=3,
                    failed_at=5.0,
                    dead_lettered_at=100.0,
                )
            )
        assert report.dead_lettered_vms == ["vm-b", "vm-a"]
        payload = json.loads(report.to_json())
        assert [d["vm_id"] for d in payload["dead_lettered"]] == ["vm-a", "vm-b"]

    def test_to_json_is_stable_and_sorted(self):
        report = FaultReport(seed=3)
        report.host_failures = 2
        report.failed_hosts = ["n2", "n1"]
        report.record_evacuation_success(latency_s=12.345678901, attempts=1)
        first = report.to_json()
        second = report.to_json()
        assert first == second
        payload = json.loads(first)
        assert payload["failed_hosts"] == ["n1", "n2"]
        assert list(payload) == sorted(payload)

    def test_render_mentions_every_fault_class(self):
        report = FaultReport()
        text = report.render()
        for needle in ("host failures", "migrations", "telemetry",
                       "evacuations", "dead-lettered"):
            assert needle in text


def test_shared_rng_can_be_injected():
    """Models accept an external generator (for deliberate coupling)."""
    rng = np.random.default_rng(0)
    model = MigrationFaultModel(abort_fraction=0.5, rng=rng)
    telemetry = TelemetryFaultModel(gap_probability=0.5, rng=rng)
    model.attempt("vm", "a", "b")
    telemetry.scrape_missed()  # both draw from the same stream without error
