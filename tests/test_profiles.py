"""Tests for workload profiles, including the Fig 14 calibration targets."""

import numpy as np
import pytest

from repro.infrastructure.flavors import default_catalog
from repro.workloads.profiles import PROFILES, profile_for_flavor


@pytest.fixture(scope="module")
def big_rng():
    return np.random.default_rng(7)


def test_all_profiles_named_consistently():
    for name, profile in PROFILES.items():
        assert profile.name == name


def test_profiles_cover_paper_application_classes():
    """§5.5 names dev environments, CI/CD, and Kubernetes infrastructure."""
    assert {"hana_db", "abap_app", "cicd", "devenv", "k8s_infra"} <= set(PROFILES)


class TestSampledMeans:
    def test_cpu_means_mostly_low(self, big_rng):
        """Fig 14a: the population is strongly CPU-overprovisioned."""
        samples = np.asarray(
            [PROFILES["general"].sample_cpu_mean(big_rng) for _ in range(4000)]
        )
        assert np.mean(samples < 0.70) > 0.80

    def test_hana_memory_means_high(self, big_rng):
        samples = np.asarray(
            [PROFILES["hana_db"].sample_mem_mean(big_rng) for _ in range(2000)]
        )
        assert np.mean(samples > 0.85) > 0.80

    def test_mixed_memory_bimodality(self, big_rng):
        """The general mix must produce both low and near-full memory VMs."""
        samples = np.asarray(
            [PROFILES["general"].sample_mem_mean(big_rng) for _ in range(4000)]
        )
        assert np.mean(samples > 0.85) > 0.3
        assert np.mean(samples < 0.70) > 0.25


class TestPatterns:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_cpu_pattern_tracks_requested_mean(self, name, big_rng):
        profile = PROFILES[name]
        grid = np.arange(0, 14 * 86_400, 1800.0)
        target = 0.3
        means = []
        for _ in range(8):
            pattern = profile.cpu_pattern(target, big_rng)
            means.append(float(np.mean(np.clip(pattern(grid), 0, 1))))
        assert 0.1 < float(np.mean(means)) < 0.55

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_patterns_stay_in_unit_interval(self, name, big_rng):
        profile = PROFILES[name]
        grid = np.arange(0, 7 * 86_400, 900.0)
        cpu = profile.cpu_pattern(0.5, big_rng)(grid)
        mem = profile.mem_pattern(0.5, big_rng)(grid)
        for values in (cpu, mem):
            assert values.min() >= 0.0
            assert values.max() <= 1.0

    def test_mem_pattern_stable_profiles_flat(self, big_rng):
        profile = PROFILES["k8s_infra"]  # mem_stability = 0.9
        grid = np.arange(0, 30 * 86_400, 3600.0)
        stds = [
            float(np.std(profile.mem_pattern(0.6, big_rng)(grid))) for _ in range(10)
        ]
        assert float(np.median(stds)) < 0.05


class TestProfileAssignment:
    def test_hana_flavors_get_hana_profile(self, big_rng):
        catalog = default_catalog()
        hana = catalog.get("h_c64_m1024")
        for _ in range(20):
            assert profile_for_flavor(hana, big_rng).name == "hana_db"

    def test_general_flavors_get_mix(self, big_rng):
        catalog = default_catalog()
        flavor = catalog.get("g_c4_m16")
        names = {profile_for_flavor(flavor, big_rng).name for _ in range(300)}
        assert len(names) >= 4  # a real mix, not one profile

    def test_gpu_flavor_mapped(self, big_rng):
        catalog = default_catalog()
        assert profile_for_flavor(catalog.get("gpu_c32_m256"), big_rng).name == "k8s_infra"
