"""Tests for the §7 guidance analytics: overcommit and right-sizing."""

import pytest

from repro.core.guidance import (
    assess_overcommit,
    rightsizing_recommendations,
    rightsizing_summary,
)


class TestOvercommit:
    def test_region_assessment(self, small_dataset):
        assessment = assess_overcommit(small_dataset)
        assert assessment.scope == "region"
        assert assessment.current_ratio > 0
        assert assessment.physical_cores > 0
        assert assessment.peak_demand_cores > 0

    def test_overprovisioning_leaves_headroom(self, small_dataset):
        """§7: CPU is significantly overprovisioned — observed demand would
        support a higher overcommit factor than allocation suggests."""
        assessment = assess_overcommit(small_dataset)
        assert assessment.supportable_ratio > assessment.current_ratio
        assert assessment.headroom > 1.0

    def test_p95_ratio_at_least_peak_ratio(self, small_dataset):
        assessment = assess_overcommit(small_dataset)
        assert assessment.supportable_ratio_p95 >= assessment.supportable_ratio

    def test_bb_scoped(self, small_dataset):
        bb = small_dataset.building_blocks()[0]
        assessment = assess_overcommit(small_dataset, bb_id=bb)
        assert assessment.scope == bb

    def test_unknown_scope_raises(self, small_dataset):
        with pytest.raises(ValueError):
            assess_overcommit(small_dataset, bb_id="ghost")


class TestRightsizing:
    def test_only_underutilized_vms_targeted(self, small_dataset):
        for rec in rightsizing_recommendations(small_dataset):
            assert rec.avg_utilization < 0.70
            assert rec.recommended < rec.current
            assert rec.saving_fraction >= 0.25

    def test_recommendation_hits_target_band(self, small_dataset):
        """Recommended sizes would land utilisation at or below optimal."""
        for rec in rightsizing_recommendations(small_dataset)[:200]:
            new_util = rec.current * rec.avg_utilization / rec.recommended
            assert new_util <= 0.85 + 1e-9

    def test_sorted_by_saving(self, small_dataset):
        recs = rightsizing_recommendations(small_dataset)
        savings = [r.saving_fraction for r in recs]
        assert savings == sorted(savings, reverse=True)

    def test_cpu_reclaim_larger_than_memory(self, small_dataset):
        """§7: CPU is far more overprovisioned than memory."""
        summary = rightsizing_summary(small_dataset)
        rows = {str(r["resource"]): r for r in summary.rows()}
        assert rows["cpu"]["vms_affected"] > rows["memory"]["vms_affected"]
        assert rows["cpu"]["reclaimable_fraction"] > rows["memory"]["reclaimable_fraction"]

    def test_invalid_target_raises(self, small_dataset):
        with pytest.raises(ValueError):
            rightsizing_recommendations(small_dataset, target_utilization=0.0)
