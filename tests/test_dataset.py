"""Tests for the SAPCloudDataset facade: slicing, summary, CSV round-trip."""

import numpy as np
import pytest

from repro.core.dataset import SAPCloudDataset
from repro.datagen import GeneratorConfig, generate_dataset


@pytest.fixture(scope="module")
def mini_dataset():
    """A very small dataset so the CSV round-trip stays fast."""
    return generate_dataset(
        GeneratorConfig(scale=0.01, days=4, sampling_seconds=21_600, vm_series_limit=3)
    )


class TestSlicing:
    def test_building_blocks_and_datacenters(self, small_dataset):
        bbs = small_dataset.building_blocks()
        dcs = small_dataset.datacenters()
        assert len(bbs) >= 3
        assert len(dcs) == 2
        assert bbs == sorted(bbs)

    def test_nodes_in_bb(self, small_dataset):
        bb = small_dataset.building_blocks()[0]
        nodes = small_dataset.nodes_in(bb_id=bb)
        assert len(nodes) > 0
        assert all(str(b) == bb for b in nodes["bb_id"])

    def test_nodes_in_dc(self, small_dataset):
        dc = small_dataset.datacenters()[0]
        nodes = small_dataset.nodes_in(dc_id=dc)
        assert all(str(d) == dc for d in nodes["dc_id"])

    def test_vms_alive_at(self, small_dataset):
        mid = (small_dataset.window_start + small_dataset.window_end) / 2
        alive = small_dataset.vms_alive_at(mid)
        assert 0 < len(alive) <= small_dataset.vm_count
        created = np.asarray(alive["created_at"], dtype=float)
        assert np.all(created <= mid)

    def test_node_series_unknown_node_empty(self, small_dataset):
        series = small_dataset.node_series(
            "vrops_hostsystem_cpu_core_utilization_percentage", "ghost"
        )
        assert len(series) == 0

    def test_summary_fields(self, small_dataset):
        summary = small_dataset.summary()
        assert summary["window_days"] == pytest.approx(30.0)
        assert summary["nodes"] == small_dataset.node_count
        assert summary["samples"] > 0


class TestCsvRoundTrip:
    def test_round_trip_preserves_everything(self, mini_dataset, tmp_path):
        mini_dataset.to_csv(tmp_path / "ds")
        back = SAPCloudDataset.from_csv(tmp_path / "ds")

        assert back.node_count == mini_dataset.node_count
        assert back.vm_count == mini_dataset.vm_count
        assert back.meta["seed"] == mini_dataset.meta["seed"]
        assert set(back.store.metrics()) == set(mini_dataset.store.metrics())

        node_id = str(mini_dataset.nodes["node_id"][0])
        metric = "vrops_hostsystem_cpu_core_utilization_percentage"
        original = mini_dataset.node_series(metric, node_id)
        restored = back.node_series(metric, node_id)
        np.testing.assert_allclose(restored.timestamps, original.timestamps)
        np.testing.assert_allclose(restored.values, original.values, rtol=1e-9)

    def test_round_trip_analysis_equivalence(self, mini_dataset, tmp_path):
        """Analyses produce identical results on the reloaded dataset."""
        from repro.core.characterization import utilization_breakdown

        mini_dataset.to_csv(tmp_path / "ds")
        back = SAPCloudDataset.from_csv(tmp_path / "ds")
        a = utilization_breakdown(mini_dataset, "cpu")
        b = utilization_breakdown(back, "cpu")
        assert a.underutilized == pytest.approx(b.underutilized, abs=1e-9)

    def test_expected_files_written(self, mini_dataset, tmp_path):
        mini_dataset.to_csv(tmp_path / "ds")
        names = {p.name for p in (tmp_path / "ds").iterdir()}
        assert {"nodes.csv", "vms.csv", "events.csv", "meta.json"} <= names
        assert any(n.startswith("metric_vrops_hostsystem_cpu") for n in names)
