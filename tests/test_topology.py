"""Tests for topology building and the Table 5 reference data."""

import pytest

from repro.infrastructure.topology import (
    BuildingBlockSpec,
    DatacenterSpec,
    TopologySpec,
    build_region,
    datacenter_spec_from_counts,
    paper_datacenter_table,
    paper_region_spec,
)


class TestBuildRegion:
    def test_builds_from_spec(self, tiny_region_spec):
        region = build_region(tiny_region_spec)
        assert region.node_count == 12
        assert set(region.azs) == {"az1", "az2"}

    def test_node_ids_unique(self, tiny_region):
        ids = [n.node_id for n in tiny_region.iter_nodes()]
        assert len(ids) == len(set(ids))

    def test_bb_spec_requires_nodes(self):
        with pytest.raises(ValueError):
            BuildingBlockSpec(bb_id="x", node_count=0)


class TestDatacenterSpecFromCounts:
    def test_node_count_preserved_approximately(self):
        spec = datacenter_spec_from_counts("dc", "az", node_count=100)
        total = sum(bb.node_count for bb in spec.building_blocks)
        assert abs(total - 100) <= 4  # min-BB-size rounding only

    def test_bb_sizes_in_paper_range(self):
        """§3.1: building block sizes range from 2 to 128 nodes."""
        spec = datacenter_spec_from_counts("dc", "az", node_count=500)
        for bb in spec.building_blocks:
            assert 2 <= bb.node_count <= 128

    def test_has_hana_and_general_bbs(self):
        spec = datacenter_spec_from_counts("dc", "az", node_count=60)
        classes = {bb.aggregate_class for bb in spec.building_blocks}
        assert "" in classes  # general purpose
        assert any(c.startswith("hana") for c in classes)

    def test_exactly_one_hana_xl_aggregate(self):
        spec = datacenter_spec_from_counts("dc", "az", node_count=200)
        xl = [b for b in spec.building_blocks if b.aggregate_class == "hana_xl"]
        assert len(xl) == 1

    def test_hana_bbs_pack_general_spread(self):
        spec = datacenter_spec_from_counts("dc", "az", node_count=60)
        for bb in spec.building_blocks:
            if bb.aggregate_class.startswith("hana"):
                assert bb.policy == "pack"
            else:
                assert bb.policy == "spread"

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            datacenter_spec_from_counts("dc", "az", node_count=0)


class TestPaperRegionSpec:
    def test_full_scale_matches_paper(self):
        """The studied region: ~1,800 hypervisors across two DCs."""
        region = build_region(paper_region_spec(scale=1.0))
        assert 1700 <= region.node_count <= 1900
        assert len(list(region.iter_datacenters())) == 2

    def test_scaled_down(self):
        region = build_region(paper_region_spec(scale=0.02))
        assert 20 <= region.node_count <= 60

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            paper_region_spec(scale=0)


class TestPaperTable5:
    def test_29_datacenters(self):
        assert len(paper_datacenter_table()) == 29

    def test_totals_match_paper_scale(self):
        """§3: >6,000 hypervisors and >200,000 VMs across the fleet."""
        rows = paper_datacenter_table()
        assert sum(r["hypervisors"] for r in rows) > 6000
        assert sum(r["virtual_machines"] for r in rows) > 150_000

    def test_studied_region_is_largest(self):
        """Region 9 (751 + 1,072 nodes ≈ 1,800) is the studied deployment."""
        rows = paper_datacenter_table()
        region9 = [r for r in rows if r["region_id"] == 9]
        assert sum(r["hypervisors"] for r in region9) == 1823

    def test_dc_sizes_span_22_to_1072(self):
        rows = paper_datacenter_table()
        sizes = [r["hypervisors"] for r in rows]
        assert min(sizes) == 22
        assert max(sizes) == 1072
