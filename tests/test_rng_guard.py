"""Tests for the conftest global-`random` guard itself."""

from __future__ import annotations

import importlib.util
import random
from pathlib import Path

import pytest

_spec = importlib.util.spec_from_file_location(
    "_repro_conftest", Path(__file__).with_name("conftest.py")
)
_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_conftest)
_global_random_guard = _conftest._global_random_guard


class _FakeNode:
    nodeid = "tests/test_fake.py::test_offender"

    def __init__(self, marker: bool) -> None:
        self._marker = marker

    def get_closest_marker(self, name):
        assert name == "uses_global_random"
        return object() if self._marker else None


class _FakeRequest:
    def __init__(self, marker: bool = False) -> None:
        self.node = _FakeNode(marker)


def _drive(monkeypatch, *, marker: bool, body):
    """Run ``body`` inside one setup/teardown cycle of the guard."""
    gen = _global_random_guard.__wrapped__(_FakeRequest(marker), monkeypatch)
    next(gen)
    body()
    with pytest.raises(StopIteration):
        next(gen)


def test_guard_fails_on_unseeded_global_draw(monkeypatch):
    with pytest.raises(pytest.fail.Exception, match="global `random` stream"):
        _drive(monkeypatch, marker=False, body=random.random)


def test_guard_restores_state_even_for_offenders(monkeypatch):
    before = random.getstate()
    with pytest.raises(pytest.fail.Exception):
        _drive(monkeypatch, marker=False, body=random.random)
    assert random.getstate() == before


def test_guard_allows_seeded_use(monkeypatch):
    def body():
        random.seed(20260808)
        random.random()

    _drive(monkeypatch, marker=False, body=body)


def test_guard_allows_untouched_state(monkeypatch):
    _drive(monkeypatch, marker=False, body=lambda: None)


@pytest.mark.uses_global_random
def test_guard_marker_opts_out(monkeypatch):
    # Marked: with the inner guard opted out, nothing restores the global
    # state this test's body advances, so it must opt out itself too.
    _drive(monkeypatch, marker=True, body=random.random)


@pytest.mark.uses_global_random
def test_marker_opts_out_end_to_end():
    # Runs under the real autouse guard; the marker must let this pass.
    random.random()
