"""Property-based tests for the DRS balancer."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.drs.balancer import DrsBalancer, DrsConfig
from repro.infrastructure.flavors import Flavor
from repro.infrastructure.vm import VM
from tests.conftest import make_bb

_vm_sizes = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=32),  # vcpus
        st.integers(min_value=0, max_value=3),  # initial node index
    ),
    max_size=25,
)


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(sizes=_vm_sizes, nodes=st.integers(min_value=1, max_value=4))
def test_property_drs_never_worsens_and_conserves(sizes, nodes):
    """After any DRS run: imbalance never increases, no VM is lost or
    duplicated, and no node exceeds its allocatable capacity."""
    bb = make_bb(nodes=nodes)
    node_list = list(bb.iter_nodes())
    for i, (vcpus, node_index) in enumerate(sizes):
        vm = VM(vm_id=f"v{i}", flavor=Flavor(f"f{i}", vcpus=vcpus, ram_gib=4))
        node_list[node_index % nodes].add_vm(vm)

    balancer = DrsBalancer(config=DrsConfig(max_moves_per_run=20))
    before_ids = sorted(vm.vm_id for vm in bb.vms())
    before_imbalance = balancer.imbalance(bb)
    # The generated initial placement may itself overload a node (it bypasses
    # admission control); DRS must never push a *within-capacity* node over.
    over_before = {
        node.node_id
        for node in bb.iter_nodes()
        if not node.allocated().fits_within(bb.overcommit.allocatable(node.physical))
    }

    balancer.run(bb)

    after_ids = sorted(vm.vm_id for vm in bb.vms())
    assert after_ids == before_ids
    assert balancer.imbalance(bb) <= before_imbalance + 1e-12
    for node in bb.iter_nodes():
        if node.node_id in over_before:
            continue
        allocatable = bb.overcommit.allocatable(node.physical)
        assert node.allocated().fits_within(allocatable)


@settings(max_examples=30, deadline=None)
@given(sizes=_vm_sizes)
def test_property_drs_idempotent_at_fixpoint(sizes):
    """Once DRS stops recommending moves, a second run changes nothing."""
    bb = make_bb(nodes=3)
    node_list = list(bb.iter_nodes())
    for i, (vcpus, node_index) in enumerate(sizes):
        node_list[node_index % 3].add_vm(
            VM(vm_id=f"v{i}", flavor=Flavor(f"f{i}", vcpus=vcpus, ram_gib=4))
        )
    balancer = DrsBalancer(config=DrsConfig(max_moves_per_run=50))
    balancer.run(bb)
    placement_before = {vm.vm_id: vm.node_id for vm in bb.vms()}
    second = balancer.run(bb)
    assert second == []
    assert {vm.vm_id: vm.node_id for vm in bb.vms()} == placement_before
