"""Tests for the VM lifecycle state machine."""

import pytest

from repro.infrastructure.flavors import Flavor
from repro.infrastructure.vm import VM, VMState


@pytest.fixture
def vm() -> VM:
    return VM(vm_id="v1", flavor=Flavor("f", vcpus=2, ram_gib=8))


def test_initial_state_is_requested(vm):
    assert vm.state is VMState.REQUESTED
    assert not vm.alive


def test_happy_path_to_active(vm):
    vm.transition(VMState.BUILDING)
    vm.transition(VMState.ACTIVE)
    assert vm.alive


def test_illegal_transition_raises(vm):
    with pytest.raises(ValueError, match="illegal VM state transition"):
        vm.transition(VMState.ACTIVE)  # REQUESTED -> ACTIVE skips BUILDING


def test_deleted_is_terminal(vm):
    vm.transition(VMState.BUILDING)
    vm.transition(VMState.ACTIVE)
    vm.transition(VMState.DELETED)
    with pytest.raises(ValueError):
        vm.transition(VMState.ACTIVE)


def test_migrating_returns_to_active(vm):
    vm.transition(VMState.BUILDING)
    vm.transition(VMState.ACTIVE)
    vm.transition(VMState.MIGRATING)
    assert vm.alive
    vm.transition(VMState.ACTIVE)


def test_error_allows_rebuild_or_delete(vm):
    """ERROR exits via deletion or the evacuation rebuild path (Nova
    evacuate: rebuild the stranded instance on a new host)."""
    vm.transition(VMState.ERROR)
    with pytest.raises(ValueError):
        vm.transition(VMState.ACTIVE)  # must rebuild first
    vm.transition(VMState.BUILDING)
    vm.transition(VMState.ACTIVE)
    assert vm.alive


def test_error_can_be_deleted(vm):
    vm.transition(VMState.ERROR)
    vm.transition(VMState.DELETED)
    assert not vm.alive


def test_requested_capacity_comes_from_flavor(vm):
    assert vm.requested().vcpus == 2
    assert vm.requested().memory_mb == 8 * 1024


def test_lifetime_with_deletion(vm):
    vm.created_at = 100.0
    vm.deleted_at = 400.0
    assert vm.lifetime_seconds() == 300.0


def test_lifetime_alive_requires_now(vm):
    vm.created_at = 100.0
    with pytest.raises(ValueError, match="alive"):
        vm.lifetime_seconds()
    assert vm.lifetime_seconds(now=150.0) == 50.0


def test_lifetime_never_negative(vm):
    vm.created_at = 100.0
    assert vm.lifetime_seconds(now=50.0) == 0.0
