"""Byte-identity of the columnar scrape fast-path.

The columnar path (series handles + compiled waveforms, zero Sample
objects) must be observationally indistinguishable from the legacy
per-sample path: same placements, same counters, same telemetry bytes.
`repro verify --check scrape_path` holds this on the canned scenarios;
these tests hold the building blocks (SeriesHandle, content_fingerprint,
emit_node/emit_region vs scrape_node/scrape_region) and an end-to-end
faulted run small enough for the unit suite.
"""

from dataclasses import replace

import pytest

from repro.faults.config import FaultConfig
from repro.faults.scenario import ScenarioConfig, run_fault_scenario
from repro.infrastructure.flavors import Flavor
from repro.infrastructure.vm import VM
from repro.simulation.runner import SimulationConfig
from repro.telemetry.exporters import NodeUsage, NovaExporter, VropsExporter
from repro.telemetry.store import MetricStore
from tests.conftest import make_node


@pytest.fixture
def usage() -> NodeUsage:
    return NodeUsage(
        cpu_used_fraction=0.5,
        memory_used_fraction=0.25,
        network_tx_kbps=1000.0,
        network_rx_kbps=800.0,
        disk_used_gb=100.0,
        cpu_ready_ms=30_000.0,
        cpu_contention_fraction=0.1,
    )


class TestSeriesHandle:
    def test_append_visible_through_query(self):
        store = MetricStore()
        handle = store.series_handle("m", {"host": "n1"})
        handle.append(0.0, 1.0)
        handle.append(60.0, 2.0)
        series = store.query("m", {"host": "n1"})
        assert list(series.timestamps) == [0.0, 60.0]
        assert list(series.values) == [1.0, 2.0]

    def test_handle_and_ingest_share_one_series(self):
        from repro.telemetry.exporters import Sample

        store = MetricStore()
        handle = store.series_handle("m", {"host": "n1"})
        handle.append(0.0, 1.0)
        store.ingest([Sample("m", {"host": "n1"}, 60.0, 2.0)])
        assert store.sample_count() == 2
        assert list(store.query("m", {"host": "n1"}).values) == [1.0, 2.0]

    def test_fingerprint_tracks_content_not_construction(self):
        def build(via_handle: bool) -> str:
            store = MetricStore()
            if via_handle:
                h = store.series_handle("m", {"a": "1"})
                for i in range(5):
                    h.append(float(i), float(i) * 2.0)
            else:
                from repro.telemetry.exporters import Sample

                store.ingest(
                    [
                        Sample("m", {"a": "1"}, float(i), float(i) * 2.0)
                        for i in range(5)
                    ]
                )
            return store.content_fingerprint()

        assert build(True) == build(False)

    def test_fingerprint_differs_on_any_value_change(self):
        stores = []
        for value in (1.0, 1.0 + 2**-40):
            store = MetricStore()
            store.series_handle("m", {}).append(0.0, value)
            stores.append(store.content_fingerprint())
        assert stores[0] != stores[1]


class TestEmitParity:
    def test_emit_node_matches_scrape_node_ingest(self, usage):
        node = make_node("n1")
        node.building_block = "bb1"
        node.datacenter = "dc1"
        node.az = "az1"

        legacy = MetricStore()
        legacy.ingest(VropsExporter().scrape_node(node, usage, 60.0))

        columnar = MetricStore()
        emitted = VropsExporter().emit_node(columnar, node, usage, 60.0)

        assert emitted == legacy.sample_count() == 7
        assert columnar.content_fingerprint() == legacy.content_fingerprint()

    def test_emit_region_matches_scrape_region_ingest(self, tiny_region):
        bb = tiny_region.find_building_block("dc1-gp-00")
        node = next(bb.iter_nodes())
        node.add_vm(VM(vm_id="v1", flavor=Flavor("f", vcpus=8, ram_gib=32)))

        legacy = MetricStore()
        legacy.ingest(NovaExporter().scrape_region(tiny_region, 0.0))

        columnar = MetricStore()
        emitted = NovaExporter().emit_region(columnar, tiny_region, 0.0)

        assert emitted == legacy.sample_count()
        assert columnar.content_fingerprint() == legacy.content_fingerprint()

    def test_emit_region_tracks_allocation_changes(self, tiny_region):
        bb = tiny_region.find_building_block("dc1-gp-00")
        node = next(bb.iter_nodes())
        store = MetricStore()
        exporter = NovaExporter()
        exporter.emit_region(store, tiny_region, 0.0)
        node.add_vm(VM(vm_id="v1", flavor=Flavor("f", vcpus=8, ram_gib=32)))
        exporter.emit_region(store, tiny_region, 60.0)

        used = store.query(
            "openstack_compute_nodes_vcpus_used_gauge",
            {
                "compute_host": "dc1-gp-00",
                "datacenter": "dc1",
                "availability_zone": "az1",
            },
        )
        assert list(used.values) == [0.0, 8.0]
        total = store.query(
            "openstack_compute_instances_total", {"region": "test-region"}
        )
        assert list(total.values) == [0.0, 1.0]


class TestEndToEndScrapePath:
    def _run(self, scrape_path: str):
        config = ScenarioConfig(
            building_blocks=2,
            nodes_per_bb=3,
            duration_days=0.25,
            initial_vms=24,
            arrival_rate_per_hour=8.0,
            scrape_interval_s=900.0,
            faults=FaultConfig(
                seed=11,
                host_failure_rate_per_day=12.0,
                repair_time_mean_s=1800.0,
                migration_abort_fraction=0.2,
                scrape_gap_probability=0.05,
                stale_node_probability=0.05,
            ),
            scrape_path=scrape_path,
        )
        return run_fault_scenario(config)

    def test_columnar_byte_identical_to_legacy_under_faults(self):
        fast = self._run("columnar")
        slow = self._run("legacy")
        assert {v: vm.node_id for v, vm in fast.vms.items()} == {
            v: vm.node_id for v, vm in slow.vms.items()
        }
        assert (fast.created, fast.deleted, fast.rejected, fast.resized) == (
            slow.created,
            slow.deleted,
            slow.rejected,
            slow.resized,
        )
        assert fast.drs_migrations == slow.drs_migrations
        assert fast.events_processed == slow.events_processed
        assert dict(fast.scheduler_stats) == dict(slow.scheduler_stats)
        assert fast.store.sample_count() == slow.store.sample_count()
        assert (
            fast.store.content_fingerprint() == slow.store.content_fingerprint()
        )
        assert fast.fault_report.to_json() == slow.fault_report.to_json()

    def test_unknown_scrape_path_rejected(self):
        with pytest.raises(ValueError, match="scrape_path"):
            run_fault_scenario(
                ScenarioConfig(duration_days=0.01, scrape_path="turbo")
            )

    def test_profile_stages_accounts_scrape_time(self):
        config = ScenarioConfig(
            building_blocks=1,
            nodes_per_bb=2,
            duration_days=0.1,
            initial_vms=8,
            arrival_rate_per_hour=4.0,
        )
        from repro.faults.scenario import scenario_topology
        from repro.simulation.runner import RegionSimulation

        sim = RegionSimulation(
            scenario_topology(config),
            SimulationConfig(
                duration_days=config.duration_days,
                initial_vms=config.initial_vms,
                arrival_rate_per_hour=config.arrival_rate_per_hour,
                scrape_interval_s=config.scrape_interval_s,
                profile_stages=True,
            ),
        )
        result = sim.run()
        profile = result.stage_profile
        assert profile is not None
        assert set(profile) == {
            "demand_eval",
            "exporter_format",
            "ingest",
            "scheduler",
            "drs",
        }
        assert all(v >= 0.0 for v in profile.values())
        assert profile["demand_eval"] > 0.0

    def test_profile_off_by_default(self):
        result = run_fault_scenario(
            replace(
                ScenarioConfig(),
                building_blocks=1,
                nodes_per_bb=2,
                duration_days=0.05,
                initial_vms=4,
            )
        )
        assert result.stage_profile is None
