"""Tests for lifecycle-event analysis."""

import numpy as np
import pytest

from repro.core.lifecycle import (
    churn_ratio,
    daily_event_counts,
    lifecycle_summary,
    migration_report,
    population_trajectory,
)


def test_summary_totals_match_events(small_dataset):
    summary = lifecycle_summary(small_dataset)
    kinds = [str(k) for k in small_dataset.events["event"]]
    assert summary.creates == kinds.count("create")
    assert summary.deletes == kinds.count("delete")
    assert summary.migrations == kinds.count("migrate")
    assert summary.resizes == kinds.count("resize")
    assert summary.window_days == pytest.approx(30.0)


def test_rates_positive(small_dataset):
    summary = lifecycle_summary(small_dataset)
    assert summary.daily_arrival_rate > 0
    assert summary.daily_departure_rate > 0
    assert summary.migrations_per_day > 0


def test_daily_counts_sum_to_totals(small_dataset):
    daily = daily_event_counts(small_dataset)
    summary = lifecycle_summary(small_dataset)
    assert len(daily) == 30
    assert int(np.sum(daily["create"])) == summary.creates
    assert int(np.sum(daily["migrate"])) == summary.migrations


def test_population_trajectory_stable(small_dataset):
    """Long-lived enterprise population: no collapse or explosion."""
    trajectory = population_trajectory(small_dataset)
    assert len(trajectory) == 30
    assert trajectory.min() > 0.7 * trajectory.max()


def test_churn_ratio_low(small_dataset):
    """Unlike the batch traces of Table 3, churn is a small fraction of
    the standing population over 30 days."""
    ratio = churn_ratio(small_dataset)
    assert 0.0 < ratio < 0.5


def test_migration_report_consistent(small_dataset):
    report = migration_report(small_dataset)
    assert len(report) > 0
    counts = np.asarray(report["migrations"], dtype=int)
    assert np.all(counts >= 1)
    assert np.all(np.diff(counts) <= 0)  # sorted descending
    summary = lifecycle_summary(small_dataset)
    assert int(counts.sum()) == summary.migrations
