"""Tests for the FilterScheduler: the full filter → weigh → claim flow."""

import pytest

from repro.infrastructure.flavors import default_catalog
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import PlacementService, VCPU
from repro.scheduler.request import RequestSpec


@pytest.fixture
def scheduler(tiny_region):
    placement = PlacementService()
    for bb in tiny_region.iter_building_blocks():
        placement.register_building_block(bb)
    return FilterScheduler(tiny_region, placement)


@pytest.fixture
def catalog():
    return default_catalog()


def request(catalog, flavor_name="g_c4_m16", vm_id="v1", **kwargs) -> RequestSpec:
    return RequestSpec(vm_id=vm_id, flavor=catalog.get(flavor_name), **kwargs)


class TestScheduling:
    def test_basic_placement_claims_resources(self, scheduler, catalog):
        result = scheduler.schedule(request(catalog))
        assert result.host_id in ("dc1-gp-00", "dc2-gp-00")
        allocation = scheduler.placement.allocation_for("v1")
        assert allocation.provider_id == result.host_id
        assert scheduler.stats["placed"] == 1

    def test_az_constraint_honoured(self, scheduler, catalog):
        result = scheduler.schedule(request(catalog, availability_zone="az2"))
        assert result.host_id == "dc2-gp-00"

    def test_hana_xl_flavor_lands_on_special_bb(self, scheduler, catalog):
        result = scheduler.schedule(request(catalog, "h_c96_m3072"))
        assert result.host_id == "dc1-hana-00"

    def test_general_vm_never_lands_on_special_bb(self, scheduler, catalog):
        for i in range(20):
            result = scheduler.schedule(request(catalog, vm_id=f"v{i}"))
            assert result.host_id != "dc1-hana-00"

    def test_spread_weighers_balance_load(self, scheduler, catalog):
        # Big VMs so free capacities converge: once the larger BB drains to
        # the level of the smaller one, spread alternates between them.
        hosts = [
            scheduler.schedule(
                request(catalog, "g_c64_m256", vm_id=f"v{i}")
            ).host_id
            for i in range(10)
        ]
        assert len(set(hosts)) == 2

    def test_pack_weighers_concentrate_hana(self, scheduler, catalog):
        """Non-XL HANA flavors go to the plain hana aggregate and pack."""
        hosts = {
            scheduler.schedule(request(catalog, "h_c32_m512", vm_id=f"h{i}")).host_id
            for i in range(5)
        }
        assert hosts == {"dc1-hana-01"}

    def test_no_valid_host_when_too_big(self, scheduler, catalog):
        big = request(catalog, "h_c128_m12288", availability_zone="az2")
        with pytest.raises(NoValidHost):
            scheduler.schedule(big)
        assert scheduler.stats["failed"] == 1

    def test_alternates_reported(self, scheduler, catalog):
        result = scheduler.schedule(request(catalog))
        assert result.host_id not in result.alternates
        assert len(result.alternates) >= 1

    def test_filtered_counts_trace_pipeline(self, scheduler, catalog):
        result = scheduler.schedule(request(catalog))
        counts = result.filtered_counts
        assert counts["initial"] == 4
        # Both HANA aggregates are always removed for general flavors.
        assert counts["AggregateInstanceExtraSpecsFilter"] == 2

    def test_capacity_exhaustion_fails_eventually(self, scheduler, catalog):
        """Keep placing until everything is full; scheduler must refuse."""
        placed = 0
        with pytest.raises(NoValidHost):
            for i in range(10_000):
                scheduler.schedule(request(catalog, "g_c64_m256", vm_id=f"v{i}"))
                placed += 1
        assert placed > 0
        # Every successful claim is still within capacity.
        for provider in scheduler.placement.providers():
            assert provider.used[VCPU] <= provider.capacity(VCPU) + 1e-9

    def test_retry_after_racing_claim(self, scheduler, catalog):
        """If the chosen host's claim fails (raced), alternates are tried."""
        spec = request(catalog)
        ranked, _counts = scheduler.select_destinations(spec)
        best = ranked[0][0].host_id
        # Simulate a racing workload stealing the capacity of `best`.
        provider = scheduler.placement.provider(best)
        steal = provider.free(VCPU)
        scheduler.placement.claim(
            "thief", best,
            type(spec.requested())(vcpus=steal, memory_mb=1, disk_gb=1),
        )
        result = scheduler.schedule(spec)
        assert result.host_id != best

    def test_host_failing_between_filter_and_claim_uses_alternate(
        self, scheduler, catalog, monkeypatch
    ):
        """The top-ranked host dies after filtering: the claim raises, the
        scheduler retries with the host excluded and lands on an alternate."""
        from repro.scheduler.placement import AllocationError

        spec = request(catalog)
        ranked, _counts = scheduler.select_destinations(spec)
        doomed = ranked[0][0].host_id
        real_claim = scheduler.placement.claim
        failures = {"count": 0}

        def failing_claim(consumer_id, provider_id, requested):
            if provider_id == doomed and failures["count"] == 0:
                failures["count"] += 1
                raise AllocationError(f"host {provider_id} went down")
            return real_claim(consumer_id, provider_id, requested)

        monkeypatch.setattr(scheduler.placement, "claim", failing_claim)
        result = scheduler.schedule(spec)
        assert result.host_id != doomed
        assert result.attempts == 2
        assert scheduler.stats["retries"] == 1
        assert scheduler.stats["placed"] == 1
        allocation = scheduler.placement.allocation_for("v1")
        assert allocation.provider_id == result.host_id
        # Nothing was ever booked on the host that failed.
        assert all(
            v == 0.0 for v in scheduler.placement.provider(doomed).used.values()
        )

    def test_max_attempts_bounds_retries(self, tiny_region, catalog):
        placement = PlacementService()
        for bb in tiny_region.iter_building_blocks():
            placement.register_building_block(bb)
        scheduler = FilterScheduler(
            tiny_region, placement, SchedulerConfig(max_attempts=1)
        )
        with pytest.raises(ValueError):
            SchedulerConfig(max_attempts=0)
        assert scheduler.max_attempts == 1
