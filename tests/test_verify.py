"""Tests for the differential verification harness (`repro.verify`)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scheduler.hoststate import HostState
from repro.verify.goldens import (
    check_golden,
    golden_document,
    golden_path,
    read_golden_text,
    render_document,
    update_golden,
    write_golden_text,
)
from repro.verify.metamorphic import (
    check_block_split_invariance,
    check_capacity_monotonicity,
    check_downsample_idempotence,
    check_host_permutation_invariance,
    check_staleness_monotonicity,
)
from repro.verify.oracle import (
    Mismatch,
    desync_index,
    diff_outcomes,
    replay_workload,
    run_oracle,
    workload_ops,
)
from repro.verify.runner import VerifyConfig, run_verify
from repro.verify.scenarios import SCENARIOS, get_scenario

TINY = get_scenario("tiny")


# -- scenarios -------------------------------------------------------------------


def test_scenario_registry_catalogue():
    assert {"tiny", "default", "dense"} <= set(SCENARIOS)
    with pytest.raises(KeyError, match="known"):
        get_scenario("nope")


def test_grown_topology_adds_one_node_per_bb():
    base = TINY.topology()
    grown = TINY.grown_topology()
    for dc_base, dc_grown in zip(base.datacenters, grown.datacenters):
        for bb_base, bb_grown in zip(
            dc_base.building_blocks, dc_grown.building_blocks
        ):
            assert bb_grown.node_count == bb_base.node_count + 1


def test_permuted_topology_same_blocks_different_order():
    base = TINY.topology()
    perm = TINY.permuted_topology()

    def bb_ids(spec):
        return [bb.bb_id for dc in spec.datacenters for bb in dc.building_blocks]

    assert sorted(bb_ids(base)) == sorted(bb_ids(perm))
    assert bb_ids(base) != bb_ids(perm)


# -- workload --------------------------------------------------------------------


def test_workload_ops_deterministic_and_seed_sensitive():
    a = workload_ops(TINY, 7)
    b = workload_ops(TINY, 7)
    c = workload_ops(TINY, 8)
    assert a == b
    assert a != c
    creates = [op for op in a if op.op == "create"]
    deletes = [op for op in a if op.op == "delete"]
    assert len(creates) == TINY.requests
    assert deletes, "delete interleaving must exercise release paths"
    # Every delete targets a previously created VM.
    seen = set()
    for op in a:
        if op.op == "create":
            seen.add(op.vm_id)
        else:
            assert op.vm_id in seen


# -- differential oracle ---------------------------------------------------------


def test_oracle_clean_run_agrees():
    result = run_oracle(TINY, 7)
    assert result.ok, result.render()
    assert result.placed > 0
    assert result.ops == len(workload_ops(TINY, 7))


def test_oracle_catches_injected_desync():
    """Acceptance: an epoch-silent index desync yields structured
    mismatches naming host, VM, and field."""
    result = run_oracle(TINY, 7, perturb=desync_index)
    assert not result.ok
    placements = [m for m in result.mismatches if m.check == "placements"]
    assert placements, "placement divergence must be reported"
    sample = placements[0]
    assert sample.subject.startswith("vf-7-")  # the VM
    assert sample.field == "host"
    assert sample.expected != sample.actual  # the two hosts
    index_state = [m for m in result.mismatches if m.check == "index_state"]
    assert index_state, "final index-vs-truth diff must fire"
    assert any(m.field == "num_instances" for m in index_state)
    assert all(m.subject for m in index_state)  # host named


def test_oracle_desync_detected_on_every_scenario():
    for name in ("tiny", "default"):
        result = run_oracle(get_scenario(name), 8, perturb=desync_index)
        assert not result.ok, f"desync invisible on {name}"


def test_mismatch_to_dict_is_jsonable():
    m = Mismatch(
        check="index_state",
        variant="indexed",
        subject="bb-0",
        field="tenants",
        expected=frozenset({"b", "a"}),
        actual=frozenset(),
    )
    payload = json.dumps(m.to_dict())
    assert '"expected": ["a", "b"]' in payload


def test_diff_outcomes_reports_field_level():
    ops = workload_ops(TINY, 7)
    from repro.scheduler.config import SchedulerConfig

    cfg = SchedulerConfig(use_index=True, track_filter_counts=False)
    a = replay_workload(TINY.topology(), ops, cfg, variant="a")
    b = replay_workload(TINY.topology(), ops, cfg, variant="b")
    assert diff_outcomes(a, b) == []
    # Perturb one placement: exactly that VM is reported.
    victim = next(iter(b.placements))
    b.placements[victim] = "elsewhere"
    found = diff_outcomes(a, b)
    assert [m.subject for m in found] == [victim]
    assert found[0].field == "host"


# -- metamorphic properties ------------------------------------------------------


@pytest.mark.parametrize("seed", [7, 8, 9])
def test_telemetry_metamorphic_properties_hold(seed):
    assert check_block_split_invariance(seed) == []
    assert check_downsample_idempotence(seed) == []
    assert check_staleness_monotonicity(seed) == []


@pytest.mark.parametrize("seed", [7, 8])
def test_scheduler_metamorphic_properties_hold(seed):
    assert check_host_permutation_invariance(TINY, seed) == []
    assert check_capacity_monotonicity(TINY, seed) == []


def test_capacity_monotonicity_holds_under_saturation():
    dense = get_scenario("dense")
    assert check_capacity_monotonicity(dense, 9) == []


# -- goldens ---------------------------------------------------------------------


def test_golden_document_is_deterministic():
    assert render_document(golden_document(TINY, 7)) == render_document(
        golden_document(TINY, 7)
    )


def test_golden_lifecycle(tmp_path):
    missing = check_golden(TINY, 7, tmp_path)
    assert missing.status == "missing"
    assert "--update-goldens" in missing.diff

    path = update_golden(TINY, 7, tmp_path)
    assert path.exists()
    assert path.suffix == ".gz"
    assert check_golden(TINY, 7, tmp_path).ok

    # Regeneration is byte-identical, compression included (mtime=0).
    first = path.read_bytes()
    update_golden(TINY, 7, tmp_path)
    assert path.read_bytes() == first

    # Any drift fails with a readable unified diff.
    doc = json.loads(read_golden_text(path))
    doc["schedule"]["scheduler_stats"]["requests"] += 1
    write_golden_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")
    result = check_golden(TINY, 7, tmp_path)
    assert result.status == "mismatch"
    assert "+++ recomputed" in result.diff
    assert '"requests"' in result.diff


def test_golden_legacy_uncompressed_fallback(tmp_path):
    """A pre-compression .json golden is still read transparently."""
    text = render_document(golden_document(TINY, 7))
    path = golden_path(tmp_path, TINY.name, 7)
    legacy = path.with_suffix("")  # strips .gz -> the old .json name
    legacy.write_text(text)
    assert read_golden_text(path) == text
    assert check_golden(TINY, 7, tmp_path).ok

    # --update-goldens migrates: writes .json.gz, removes the .json.
    update_golden(TINY, 7, tmp_path)
    assert path.exists()
    assert not legacy.exists()
    assert check_golden(TINY, 7, tmp_path).ok


def test_checked_in_goldens_match():
    """The goldens under tests/goldens/ track the current behaviour."""
    result = check_golden(TINY, 7)
    assert result.ok, f"{result.status}:\n{result.diff}"


# -- runner ----------------------------------------------------------------------


def test_run_verify_tiny_passes_and_is_byte_stable():
    config = VerifyConfig(
        scenario="tiny", seeds=(7,), checks=("oracle", "desync", "metamorphic")
    )
    report = run_verify(config)
    assert report.ok, report.render()
    assert report.to_json() == run_verify(config).to_json()


def test_run_verify_determinism_checks():
    config = VerifyConfig(
        scenario="tiny",
        seeds=(7,),
        checks=("determinism_faults", "determinism_chaos"),
    )
    report = run_verify(config)
    assert report.ok, report.render()
    assert {o.check for o in report.outcomes} == {
        "determinism_faults",
        "determinism_chaos",
    }


def test_run_verify_iofaults_check():
    config = VerifyConfig(scenario="tiny", seeds=(7,), checks=("iofaults",))
    report = run_verify(config)
    assert report.ok, report.render()
    outcome = report.outcomes[0]
    assert outcome.check == "iofaults"
    assert "fault schedules" in outcome.summary
    # Deterministic like every other check: same config, same bytes.
    assert report.to_json() == run_verify(config).to_json()


def test_run_verify_inject_desync_fails():
    config = VerifyConfig(
        scenario="tiny", seeds=(7,), checks=("oracle",), inject_desync=True
    )
    report = run_verify(config)
    assert not report.ok
    assert report.outcomes[0].mismatches


def test_verify_config_rejects_unknown_checks():
    with pytest.raises(ValueError, match="unknown checks"):
        VerifyConfig(checks=("oracle", "vibes"))


def test_all_checks_skips_chaos_when_scenario_excludes_it():
    config = VerifyConfig(
        scenario="dense", seeds=(7,), checks=("determinism_chaos",)
    )
    assert run_verify(config).outcomes == []


# -- CLI -------------------------------------------------------------------------


def test_cli_verify_check_subset(capsys, tmp_path):
    out = tmp_path / "report.json"
    code = main(
        [
            "verify", "--scenario", "tiny", "--check", "oracle",
            "--check", "metamorphic", "--json-only", "--out", str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["ok"] is True
    assert report["checks"] == ["oracle", "metamorphic"]


def test_cli_verify_inject_desync_nonzero(capsys):
    code = main(
        [
            "verify", "--scenario", "tiny", "--check", "oracle",
            "--inject-desync", "--json-only",
        ]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    mismatches = report["outcomes"][0]["mismatches"]
    assert any(
        m["check"] == "placements" and m["field"] == "host" for m in mismatches
    )


def test_cli_verify_unknown_scenario_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["verify", "--scenario", "wat"])
    assert exc.value.code == 2
    assert "known" in capsys.readouterr().err


def test_cli_verify_unknown_check_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["verify", "--scenario", "tiny", "--check", "vibes"])
    assert exc.value.code == 2
    assert "known" in capsys.readouterr().err


def test_cli_verify_update_goldens_roundtrip(tmp_path, capsys):
    directory = str(tmp_path / "goldens")
    code = main(
        [
            "verify", "--scenario", "tiny", "--check", "goldens",
            "--goldens-dir", directory, "--update-goldens", "--json-only",
        ]
    )
    assert code == 0
    capsys.readouterr()
    code = main(
        [
            "verify", "--scenario", "tiny", "--check", "goldens",
            "--goldens-dir", directory, "--json-only",
        ]
    )
    assert code == 0


# -- HostState.diff_fields -------------------------------------------------------


def test_hoststate_diff_fields():
    a = HostState(host_id="bb", free_vcpus=10.0, tenants=frozenset({"t"}))
    b = HostState(host_id="bb", free_vcpus=12.0, tenants=frozenset())
    diffs = dict(
        (name, (mine, theirs)) for name, mine, theirs in a.diff_fields(b)
    )
    assert diffs == {
        "free_vcpus": (10.0, 12.0),
        "tenants": (frozenset({"t"}), frozenset()),
    }
    # metadata is excluded by contract
    a.metadata["decorated"] = "yes"
    assert "metadata" not in dict(
        (n, None) for n, _, _ in a.diff_fields(b)
    )
