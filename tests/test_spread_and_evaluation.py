"""Tests for spread placement and packing-quality metrics."""

import pytest

from repro.baselines.binpacking import Item, first_fit
from repro.baselines.evaluation import evaluate_packing
from repro.baselines.spread import spread_pack
from repro.infrastructure.capacity import Capacity

BIN = Capacity(vcpus=10, memory_mb=10_000, disk_gb=100)


def item(item_id, vcpus) -> Item:
    return Item(item_id, Capacity(vcpus=vcpus, memory_mb=100, disk_gb=1))


class TestSpread:
    def test_distributes_evenly(self):
        result = spread_pack([item(f"i{k}", 2) for k in range(8)], 4, BIN)
        counts = [len(b.items) for b in result.bins]
        assert counts == [2, 2, 2, 2]

    def test_fixed_bin_count(self):
        result = spread_pack([item("a", 1)], 5, BIN)
        assert len(result.bins) == 5
        assert result.bins_used == 1

    def test_unplaceable_when_full(self):
        items = [item(f"i{k}", 10) for k in range(3)]
        result = spread_pack(items, 2, BIN)
        assert len(result.unplaced) == 1

    def test_invalid_bin_count(self):
        with pytest.raises(ValueError):
            spread_pack([], 0, BIN)


class TestEvaluation:
    def test_perfect_packing_metrics(self):
        result = first_fit([item(f"i{k}", 10) for k in range(3)], BIN)
        metrics = evaluate_packing(result)
        assert metrics.bins_used == 3
        assert metrics.mean_fill == pytest.approx(1.0)
        assert metrics.fragmentation == pytest.approx(0.0)
        assert metrics.lower_bound == 3
        assert metrics.efficiency == pytest.approx(1.0)

    def test_fragmented_packing_penalised(self):
        spread = spread_pack([item(f"i{k}", 2) for k in range(4)], 4, BIN)
        packed = first_fit([item(f"i{k}", 2) for k in range(4)], BIN)
        m_spread = evaluate_packing(spread)
        m_packed = evaluate_packing(packed)
        assert m_spread.bins_used > m_packed.bins_used
        assert m_spread.fragmentation > m_packed.fragmentation

    def test_unplaced_counted(self):
        result = first_fit([item("huge", 99)], BIN)
        metrics = evaluate_packing(result)
        assert metrics.items_unplaced == 1
        assert metrics.items_placed == 0

    def test_empty_packing(self):
        metrics = evaluate_packing(first_fit([], BIN))
        assert metrics.bins_used == 0
        assert metrics.efficiency == 1.0

    def test_fill_std_measures_imbalance(self):
        balanced = spread_pack([item(f"i{k}", 5) for k in range(4)], 4, BIN)
        skewed = first_fit([item(f"i{k}", 5) for k in range(4)], BIN)
        assert evaluate_packing(balanced).fill_std <= evaluate_packing(skewed).fill_std + 1e-9
