"""Tests for the crash-consistency layer (`repro.recovery` + crash points).

Covers the journal framing (torn tail vs interior corruption), atomic
snapshots, RNG stream capture, the journaled run itself, every named
crash point, every byte-corruption mode, the hypothesis property that
recovery from a journal truncated at *any* byte offset reproduces the
uninterrupted outcome, and the audit-journal hookup in the simulation
runner.
"""

from __future__ import annotations

import json
import shutil
import struct
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults.crashpoints import (
    CORRUPTION_MODES,
    CrashInjector,
    CrashSpec,
    SimulatedCrash,
    corrupt_journal,
)
from repro.recovery import run_crash_cycles
from repro.recovery.journal import (
    HEADER,
    MAGIC,
    MAX_RECORD_BYTES,
    JournalCorruption,
    JournalWriter,
    encode_record,
    read_journal,
    truncate_torn_tail,
)
from repro.recovery.run import (
    CRASH_POINTS,
    JournaledRun,
    RecoveryError,
    recover_and_continue,
    run_journaled,
)
from repro.recovery.snapshot import (
    SnapshotStore,
    capture_rng_state,
    restore_rng_state,
)
from repro.scheduler.config import SchedulerConfig
from repro.verify.oracle import diff_outcomes, replay_workload, workload_ops
from repro.verify.scenarios import get_scenario

TINY = get_scenario("tiny")
SEED = 7


def _assert_identical(baseline, outcome):
    found = diff_outcomes(baseline, outcome) + outcome.index_mismatches
    assert found == [], "\n".join(m.render() for m in found)


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted outcome every recovery must reproduce."""
    return replay_workload(
        TINY.topology(),
        workload_ops(TINY, SEED),
        SchedulerConfig(use_index=True, track_filter_counts=False),
        variant="uninterrupted",
    )


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory):
    """One completed journaled run (default snapshot cadence) to copy from."""
    run_dir = tmp_path_factory.mktemp("completed")
    outcome = run_journaled(TINY, SEED, run_dir)
    return run_dir, outcome


@pytest.fixture(scope="module")
def flat_journal(tmp_path_factory):
    """Journal bytes of a run with NO snapshots (recovery replays from 0)."""
    run_dir = tmp_path_factory.mktemp("flat")
    run_journaled(TINY, SEED, run_dir, snapshot_every=10_000)
    return (run_dir / "journal.wal").read_bytes()


def _copy_run(src_dir, tmp_path):
    dst = tmp_path / "copy"
    shutil.copytree(src_dir, dst)
    return dst


# -- journal framing -------------------------------------------------------------


RECORDS = [
    {"t": "op", "i": 0, "op": "create", "vm": "a", "host": "bb-1"},
    {"t": "claim", "i": 1, "vm": "b", "amounts": {"vcpus": 4.0}},
    {"t": "snap", "i": 2},
]


def test_journal_roundtrip(tmp_path):
    path = tmp_path / "j.wal"
    with JournalWriter(path) as writer:
        offsets = [writer.append(r) for r in RECORDS]
    assert writer.records_written == len(RECORDS)
    scan = read_journal(path)
    assert not scan.torn
    assert [r for _, r in scan.records] == RECORDS
    assert [off for off, _ in scan.records] == offsets
    assert offsets == sorted(offsets)
    assert offsets[0] == len(HEADER)
    assert scan.valid_end == path.stat().st_size


def test_journal_encoding_is_byte_stable(tmp_path):
    a, b = tmp_path / "a.wal", tmp_path / "b.wal"
    for path in (a, b):
        with JournalWriter(path) as writer:
            for record in RECORDS:
                writer.append(record)
    assert a.read_bytes() == b.read_bytes()
    # Key order must not leak into the encoding.
    assert encode_record({"x": 1, "a": 2}) == encode_record({"a": 2, "x": 1})


def test_journal_missing_header_refused(tmp_path):
    path = tmp_path / "j.wal"
    path.write_bytes(b"NOPE" + b"\x00" * 16)
    with pytest.raises(JournalCorruption) as exc:
        read_journal(path)
    assert exc.value.offset == 0


def test_journal_unsupported_version_refused(tmp_path):
    path = tmp_path / "j.wal"
    path.write_bytes(MAGIC + struct.pack("<I", 99))
    with pytest.raises(JournalCorruption, match="format 99"):
        read_journal(path)


def _write_journal(path, records):
    with JournalWriter(path) as writer:
        for record in records:
            writer.append(record)


def test_torn_tail_detected_and_truncated(tmp_path):
    path = tmp_path / "j.wal"
    _write_journal(path, RECORDS)
    clean_size = path.stat().st_size
    garbage = struct.pack("<II", 500, 0) + b"partial"
    with open(path, "ab") as fh:
        fh.write(garbage)
    scan = read_journal(path)
    assert scan.torn
    assert scan.truncated_at == clean_size
    assert scan.truncated_reason == "incomplete record payload"
    assert [r for _, r in scan.records] == RECORDS
    removed = truncate_torn_tail(path, scan)
    assert removed == len(garbage)
    assert path.stat().st_size == clean_size
    assert not read_journal(path).torn


def test_tail_crc_damage_is_torn_but_interior_is_corruption(tmp_path):
    path = tmp_path / "j.wal"
    _write_journal(path, RECORDS)
    scan = read_journal(path)
    first_off, _ = scan.records[0]
    last_off, _ = scan.records[-1]
    frame = struct.calcsize("<II")

    data = bytearray(path.read_bytes())
    data[last_off + frame] ^= 0x01
    path.write_bytes(bytes(data))
    damaged = read_journal(path)
    assert damaged.torn
    assert damaged.truncated_at == last_off
    assert damaged.truncated_reason == "CRC mismatch in tail record"
    assert len(damaged.records) == len(RECORDS) - 1

    _write_journal(tmp_path / "j2.wal", RECORDS)
    data = bytearray((tmp_path / "j2.wal").read_bytes())
    data[first_off + frame] ^= 0x01
    (tmp_path / "j2.wal").write_bytes(bytes(data))
    with pytest.raises(JournalCorruption) as exc:
        read_journal(tmp_path / "j2.wal")
    assert exc.value.offset == first_off
    assert "interior" in exc.value.reason


def test_implausible_length_is_a_torn_tail(tmp_path):
    path = tmp_path / "j.wal"
    _write_journal(path, RECORDS)
    clean_size = path.stat().st_size
    with open(path, "ab") as fh:
        fh.write(struct.pack("<II", MAX_RECORD_BYTES + 1, 0) + b"xxxx")
    scan = read_journal(path)
    assert scan.torn
    assert scan.truncated_at == clean_size
    assert "implausible record length" in scan.truncated_reason


# -- snapshots -------------------------------------------------------------------


def test_snapshot_roundtrip_newest_wins_and_prune(tmp_path):
    store = SnapshotStore(tmp_path / "snaps", keep=2)
    for i, payload in ((10, "a"), (20, "b"), (30, "c")):
        store.write(i, {"completed": i, "tag": payload})
    loaded = store.load_latest()
    assert loaded == (30, {"completed": 30, "tag": "c"})
    remaining = sorted(p.name for p in (tmp_path / "snaps").glob("snap-*"))
    assert remaining == ["snap-00000020.json", "snap-00000030.json"]


def test_snapshot_damaged_newest_is_skipped(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    store.write(10, {"completed": 10})
    newest = store.write(20, {"completed": 20})
    newest.write_text(newest.read_text()[: len(newest.read_text()) // 2])
    assert store.load_latest() == (10, {"completed": 10})


def test_snapshot_crash_mid_write_leaves_previous_intact(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    store.write(10, {"completed": 10})

    def crash(point):
        assert point == "mid-snapshot"
        raise SimulatedCrash(point, 20)

    with pytest.raises(SimulatedCrash):
        store.write(20, {"completed": 20}, barrier=crash)
    # The interrupted commit left only a .tmp file, which load ignores.
    assert store.load_latest() == (10, {"completed": 10})
    assert list((tmp_path / "snaps").glob("*.tmp"))
    # A retried commit under the same index succeeds.
    store.write(20, {"completed": 20})
    assert store.load_latest() == (20, {"completed": 20})


def test_snapshot_keep_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="at least one"):
        SnapshotStore(tmp_path / "snaps", keep=0)


def test_rng_capture_resumes_mid_sequence():
    rng = np.random.default_rng(SEED)
    rng.uniform(size=3)
    frozen = json.loads(json.dumps(capture_rng_state(rng)))  # JSON-able
    expected = rng.uniform(size=5)
    resumed = np.random.default_rng(0)
    restore_rng_state(resumed, frozen)
    assert np.array_equal(resumed.uniform(size=5), expected)


# -- journaled run ---------------------------------------------------------------


def test_journaled_run_matches_uninterrupted_baseline(completed_run, baseline):
    _, outcome = completed_run
    _assert_identical(baseline, outcome)


def test_journaled_run_writes_valid_journal_and_snapshots(completed_run):
    run_dir, _ = completed_run
    scan = read_journal(run_dir / "journal.wal")
    assert not scan.torn
    n_ops = len(workload_ops(TINY, SEED))
    ops = [r for _, r in scan.records if r["t"] == "op"]
    assert [r["i"] for r in ops] == list(range(n_ops))
    assert any(r["t"] == "claim" for _, r in scan.records)
    assert any(r["t"] == "release" for _, r in scan.records)
    snaps = [r for _, r in scan.records if r["t"] == "snap"]
    assert [r["i"] for r in snaps] == [
        i for i in range(1, n_ops + 1) if i % 25 == 0
    ]
    store = SnapshotStore(run_dir / "snapshots")
    loaded = store.load_latest()
    assert loaded is not None and loaded[0] == snaps[-1]["i"]


def test_recover_clean_run_verifies_whole_suffix(
    completed_run, baseline, tmp_path
):
    """Recovery of an *uncrashed* run appends nothing and changes nothing."""
    run_dir, _ = completed_run
    workdir = _copy_run(run_dir, tmp_path)
    outcome, info = recover_and_continue(TINY, SEED, workdir)
    _assert_identical(baseline, outcome)
    n_ops = len(workload_ops(TINY, SEED))
    assert info.snapshot_op_index == (n_ops // 25) * 25
    assert info.replayed_ops == n_ops - info.snapshot_op_index
    assert info.appended_records == 0
    assert info.truncated_at is None
    assert info.bytes_truncated == 0


def test_recover_from_nothing_is_a_cold_start(baseline, tmp_path):
    outcome, info = recover_and_continue(TINY, SEED, tmp_path / "fresh")
    _assert_identical(baseline, outcome)
    assert info.snapshot_op_index == 0
    assert info.verified_records == 0
    assert info.appended_records > 0


# -- crash points ----------------------------------------------------------------


def _crash_op(point):
    n_ops = len(workload_ops(TINY, SEED))
    mid = n_ops // 2
    if point.endswith("snapshot"):
        return min((mid // 25 + 1) * 25, n_ops) - 1
    return mid


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_then_recover_is_field_identical(point, baseline, tmp_path):
    at_op = _crash_op(point)
    injector = CrashInjector(CrashSpec(point, at_op))
    with pytest.raises(SimulatedCrash) as exc:
        run_journaled(TINY, SEED, tmp_path, barrier=injector)
    assert exc.value.point == point
    assert exc.value.at_op == at_op
    outcome, info = recover_and_continue(TINY, SEED, tmp_path)
    _assert_identical(baseline, outcome)
    assert info.snapshot_op_index <= at_op + 1
    n_ops = len(workload_ops(TINY, SEED))
    assert info.snapshot_op_index + info.replayed_ops == n_ops


def test_crash_spec_validation():
    with pytest.raises(ValueError, match="unknown crash point"):
        CrashSpec("mid-lunch", 3)
    with pytest.raises(ValueError, match="at_op"):
        CrashSpec("pre-op", -1)


def test_crash_injector_fires_exactly_once():
    injector = CrashInjector(CrashSpec("post-apply", 1))
    injector("pre-op")  # op 0
    injector("post-apply")
    injector("pre-op")  # op 1
    with pytest.raises(SimulatedCrash):
        injector("post-apply")
    assert injector.fired
    # Inert afterwards: the recovery pass re-fires the same barriers.
    injector("pre-op")
    injector("post-apply")


# -- byte-level corruption -------------------------------------------------------


def test_truncated_journal_recovers_through_torn_tail(
    completed_run, baseline, tmp_path
):
    workdir = _copy_run(completed_run[0], tmp_path)
    offset = corrupt_journal(workdir / "journal.wal", "truncate")
    outcome, info = recover_and_continue(TINY, SEED, workdir)
    _assert_identical(baseline, outcome)
    assert info.truncated_at is not None
    assert info.truncated_at <= offset
    assert info.bytes_truncated > 0


def test_bitflip_interior_refused_with_named_offset(completed_run, tmp_path):
    workdir = _copy_run(completed_run[0], tmp_path)
    corrupt_journal(workdir / "journal.wal", "bitflip-interior")
    with pytest.raises(JournalCorruption) as exc:
        recover_and_continue(TINY, SEED, workdir)
    assert exc.value.offset == len(HEADER)  # the first record
    assert "interior" in exc.value.reason


def test_duplicated_tail_refused_with_named_offset(completed_run, tmp_path):
    workdir = _copy_run(completed_run[0], tmp_path)
    offset = corrupt_journal(workdir / "journal.wal", "dup-tail")
    with pytest.raises(RecoveryError) as exc:
        recover_and_continue(TINY, SEED, workdir)
    assert exc.value.offset == offset
    assert "duplicate" in exc.value.reason or "duplicated" in exc.value.reason


def test_semantic_tampering_refused_as_divergence(tmp_path, baseline):
    """A record with valid framing but altered *content* is refused."""
    run_journaled(TINY, SEED, tmp_path, snapshot_every=10_000)
    path = tmp_path / "journal.wal"
    records = [r for _, r in read_journal(path).records]
    victim = next(
        i
        for i, r in enumerate(records)
        if r["t"] == "op" and r["op"] == "create" and r.get("host")
    )
    records[victim] = dict(records[victim], host="bb-somewhere-else")
    with open(path, "wb") as fh:
        fh.write(HEADER)
        for record in records:
            fh.write(encode_record(record))
    tampered_offset = read_journal(path).records[victim][0]
    with pytest.raises(RecoveryError) as exc:
        recover_and_continue(TINY, SEED, tmp_path, snapshot_every=10_000)
    assert exc.value.offset == tampered_offset
    assert "diverged" in exc.value.reason


def test_corrupt_journal_rejects_unknown_mode(completed_run, tmp_path):
    workdir = _copy_run(completed_run[0], tmp_path)
    with pytest.raises(ValueError, match="unknown corruption mode"):
        corrupt_journal(workdir / "journal.wal", "set-on-fire")


# -- the headline property -------------------------------------------------------


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_recovery_from_any_truncation_offset_is_identical(
    data, flat_journal, baseline
):
    """Cut the journal at *any* byte — mid-header even, mid-record,
    mid-frame — and recovery still reproduces the uninterrupted outcome.

    Offsets below ``len(HEADER)`` are the power-cut-before-first-fsync
    artifact: a strict header prefix is torn at 0, not corruption, and
    recovery rewrites the header and replays from nothing.  The durability
    mode is drawn too — the guarantee is identical for both; fsync only
    changes *when* bytes harden, never what a valid journal means."""
    offset = data.draw(
        st.integers(min_value=0, max_value=len(flat_journal)),
        label="truncation offset",
    )
    durability = data.draw(
        st.sampled_from(("fsync", "flush")), label="durability"
    )
    workdir = tempfile.mkdtemp(prefix="repro-recovery-prop-")
    try:
        journal = f"{workdir}/journal.wal"
        with open(journal, "wb") as fh:
            fh.write(flat_journal[:offset])
        intact_before = len(read_journal(journal).records)
        outcome, info = recover_and_continue(
            TINY, SEED, workdir, snapshot_every=10_000, durability=durability
        )
        _assert_identical(baseline, outcome)
        # No snapshots: every surviving record is verified by replay, and
        # everything lost to the cut is regenerated.
        assert info.snapshot_op_index == 0
        assert info.verified_records == intact_before
        scan = read_journal(journal)
        assert not scan.torn
        assert [r for _, r in scan.records] == [
            r for _, r in read_journal_bytes(flat_journal)
        ]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def read_journal_bytes(data: bytes):
    """Scan journal *bytes* by round-tripping through a temp file."""
    with tempfile.NamedTemporaryFile(suffix=".wal") as fh:
        fh.write(data)
        fh.flush()
        return read_journal(fh.name).records


# -- harness + report ------------------------------------------------------------


def test_run_crash_cycles_full_battery():
    report = run_crash_cycles(TINY, [SEED])
    assert report.ok, report.render()
    assert len(report.cycles) == len(CRASH_POINTS)
    assert all(c.crashed and c.recovered and c.field_identical
               for c in report.cycles)
    by_mode = {c.mode: c for c in report.corruption}
    assert set(by_mode) == set(CORRUPTION_MODES)
    assert by_mode["truncate"].outcome == "recovered-torn"
    assert by_mode["bitflip-tail"].outcome == "recovered-torn"
    assert by_mode["bitflip-interior"].outcome == "refused"
    assert by_mode["dup-tail"].outcome == "refused"
    for case in report.corruption:
        assert case.detected_at is not None

    payload = report.to_json()
    parsed = json.loads(payload)
    assert parsed["ok"] is True
    # Byte-stable: no filesystem paths or timestamps leak into the report.
    assert "repro-crash-" not in payload
    assert "/tmp" not in payload


def test_crash_report_render_names_points_and_modes():
    report = run_crash_cycles(
        TINY, [SEED], points=("post-journal",), corruption_modes=("truncate",)
    )
    text = report.render()
    assert "crash@post-journal" in text
    assert "corrupt@truncate" in text
    assert text.endswith("result: OK")


# -- simulation audit journal + service state round-trips ------------------------


def _small_chaos_config():
    from repro.resilience.chaos import ChaosConfig

    return ChaosConfig(duration_days=0.05)


def _build_chaos_sim(journal=None):
    from repro.resilience.chaos import chaos_topology
    from repro.simulation.runner import RegionSimulation, SimulationConfig

    config = _small_chaos_config()
    return RegionSimulation(
        chaos_topology(config),
        SimulationConfig(
            duration_days=config.duration_days,
            scrape_interval_s=config.scrape_interval_s,
            drs_interval_s=config.drs_interval_s,
            arrival_rate_per_hour=config.arrival_rate_per_hour,
            initial_vms=config.initial_vms,
            seed=config.seed,
            faults=config.faults,
            resilience=config.resilience,
        ),
        journal=journal,
    )


@pytest.fixture(scope="module")
def audited_chaos_run():
    """One small chaos run with every audit record captured, plus the sim."""
    records: list[dict] = []
    sim = _build_chaos_sim(journal=records.append)
    result = sim.run()
    return sim, result, records


def test_sim_audit_journal_counts_match_reports(audited_chaos_run):
    """Every control-plane mutation leaves exactly one audit record."""
    _, result, records = audited_chaos_run
    by_type: dict[str, int] = {}
    for record in records:
        by_type[record["t"]] = by_type.get(record["t"], 0) + 1
    assert by_type["clock"] == result.events_processed
    stats = result.placement.stats()
    # A move journals one claim + one release on top of the plain ones.
    assert by_type["claim"] == stats["claims"] + stats["moves"]
    assert by_type["release"] == stats["releases"] + stats["moves"]
    report = result.resilience_report
    assert by_type.get("quarantine", 0) == report.quarantines
    assert by_type.get("readmit", 0) == report.readmissions
    admissions = [r for r in records if r["t"] == "admission"]
    admits = sum(1 for r in admissions if r["decision"] == "admit")
    sheds = sum(1 for r in admissions if r["decision"] == "shed")
    assert admits == report.requests_admitted
    assert sheds == report.total_shed
    assert all("reason" in r for r in admissions if r["decision"] == "shed")


def test_sim_audit_records_survive_a_real_journal(audited_chaos_run, tmp_path):
    """The audit stream is JSON-able and frames cleanly through the WAL."""
    _, _, records = audited_chaos_run
    path = tmp_path / "audit.wal"
    with JournalWriter(path) as writer:
        for record in records:
            writer.append(record)
    scan = read_journal(path)
    assert not scan.torn
    assert len(scan.records) == len(records)
    assert [r for _, r in scan.records] == records


def test_health_state_export_restore_roundtrip(audited_chaos_run):
    sim, _, _ = audited_chaos_run
    state = sim.health.export_state()
    assert state["records"], "chaos run must exercise the health service"
    twin = _build_chaos_sim()
    assert twin.health.export_state() != state
    twin.health.restore_state(json.loads(json.dumps(state)))
    assert twin.health.export_state() == state
    # Scheduler-visible fences follow the restored record states.
    quarantined = {
        node_id
        for node_id, rec in state["records"].items()
        if rec["state"] == "quarantined"
    }
    for bb in twin.region.iter_building_blocks():
        for node in bb.iter_nodes():
            assert node.quarantined == (node.node_id in quarantined)


def test_admission_state_export_restore_roundtrip(audited_chaos_run):
    sim, _, _ = audited_chaos_run
    state = sim.admission.export_state()
    twin = _build_chaos_sim()
    twin.admission.restore_state(json.loads(json.dumps(state)))
    assert twin.admission.export_state() == state
