"""Tests for Nova server groups and their scheduler filters."""

import pytest

from repro.infrastructure.flavors import default_catalog
from repro.scheduler.filters import default_filters
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import PlacementService
from repro.scheduler.request import RequestSpec
from repro.scheduler.server_groups import (
    ServerGroupAffinityFilter,
    ServerGroupAntiAffinityFilter,
    ServerGroupRegistry,
)


@pytest.fixture
def registry():
    return ServerGroupRegistry()


class TestRegistry:
    def test_create_and_membership(self, registry):
        registry.create("ha", "anti-affinity")
        registry.add_member("ha", "vm-1")
        assert registry.group_of("vm-1").group_id == "ha"
        assert registry.group_of("loner") is None

    def test_duplicate_group_rejected(self, registry):
        registry.create("g", "affinity")
        with pytest.raises(ValueError, match="already exists"):
            registry.create("g", "affinity")

    def test_unknown_policy_rejected(self, registry):
        with pytest.raises(ValueError, match="unknown policy"):
            registry.create("g", "repulsion")

    def test_member_in_one_group_only(self, registry):
        registry.create("a", "affinity")
        registry.create("b", "affinity")
        registry.add_member("a", "vm-1")
        with pytest.raises(ValueError, match="already belongs"):
            registry.add_member("b", "vm-1")

    def test_placement_bookkeeping(self, registry):
        registry.create("g", "anti-affinity")
        registry.add_member("g", "vm-1")
        registry.record_placement("vm-1", "host-a")
        assert registry.get("g").hosts == {"host-a": 1}
        registry.record_removal("vm-1", "host-a")
        assert registry.get("g").hosts == {}

    def test_non_member_placements_ignored(self, registry):
        registry.record_placement("loner", "host-a")  # no-op, no error


class TestFiltersEndToEnd:
    def _scheduler(self, tiny_region, registry):
        placement = PlacementService()
        for bb in tiny_region.iter_building_blocks():
            placement.register_building_block(bb)
        filters = default_filters() + [
            ServerGroupAffinityFilter(registry),
            ServerGroupAntiAffinityFilter(registry),
        ]
        return FilterScheduler(tiny_region, placement, filters=filters)

    def test_anti_affinity_spreads_members(self, tiny_region, registry):
        registry.create("ha", "anti-affinity")
        scheduler = self._scheduler(tiny_region, registry)
        catalog = default_catalog()
        hosts = []
        for i in range(2):  # only 2 general hosts exist in the tiny region
            vm_id = f"vm-{i}"
            registry.add_member("ha", vm_id)
            result = scheduler.schedule(
                RequestSpec(vm_id=vm_id, flavor=catalog.get("g_c4_m16"))
            )
            registry.record_placement(vm_id, result.host_id)
            hosts.append(result.host_id)
        assert len(set(hosts)) == 2

    def test_anti_affinity_fails_when_hosts_exhausted(self, tiny_region, registry):
        registry.create("ha", "anti-affinity")
        scheduler = self._scheduler(tiny_region, registry)
        catalog = default_catalog()
        for i in range(2):
            vm_id = f"vm-{i}"
            registry.add_member("ha", vm_id)
            result = scheduler.schedule(
                RequestSpec(vm_id=vm_id, flavor=catalog.get("g_c4_m16"))
            )
            registry.record_placement(vm_id, result.host_id)
        registry.add_member("ha", "vm-2")
        with pytest.raises(NoValidHost):
            scheduler.schedule(
                RequestSpec(vm_id="vm-2", flavor=catalog.get("g_c4_m16"))
            )

    def test_affinity_co_locates_members(self, tiny_region, registry):
        registry.create("pair", "affinity")
        scheduler = self._scheduler(tiny_region, registry)
        catalog = default_catalog()
        hosts = []
        for i in range(3):
            vm_id = f"vm-{i}"
            registry.add_member("pair", vm_id)
            result = scheduler.schedule(
                RequestSpec(vm_id=vm_id, flavor=catalog.get("g_c4_m16"))
            )
            registry.record_placement(vm_id, result.host_id)
            hosts.append(result.host_id)
        assert len(set(hosts)) == 1

    def test_non_members_unconstrained(self, tiny_region, registry):
        registry.create("pair", "affinity")
        scheduler = self._scheduler(tiny_region, registry)
        catalog = default_catalog()
        result = scheduler.schedule(
            RequestSpec(vm_id="loner", flavor=catalog.get("g_c4_m16"))
        )
        assert result.host_id
