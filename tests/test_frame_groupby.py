"""Tests for Frame.groupby aggregation."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.frame import Frame
from repro.frame.groupby import AGGREGATIONS


@pytest.fixture
def table() -> Frame:
    return Frame(
        {
            "g": ["a", "b", "a", "b", "a"],
            "h": [1, 1, 2, 2, 2],
            "v": [1.0, 2.0, 3.0, 4.0, 5.0],
        }
    )


def test_group_count(table):
    out = table.groupby("g").size()
    assert dict(zip(out["g"], out["count"])) == {"a": 3, "b": 2}


def test_agg_string_spec(table):
    out = table.groupby("g").agg(total="v:sum", top="v:max")
    by_g = {r["g"]: r for r in out.rows()}
    assert by_g["a"]["total"] == 9.0
    assert by_g["b"]["top"] == 4.0


def test_agg_tuple_spec(table):
    out = table.groupby("g").agg(m=("v", "mean"))
    by_g = dict(zip(out["g"], out["m"]))
    assert by_g["a"] == pytest.approx(3.0)


def test_agg_callable_spec(table):
    out = table.groupby("g").agg(spread=lambda sub: sub["v"].max() - sub["v"].min())
    by_g = dict(zip(out["g"], out["spread"]))
    assert by_g["a"] == 4.0


def test_agg_unknown_aggregation_raises(table):
    with pytest.raises(ValueError, match="unknown aggregation"):
        table.groupby("g").agg(x="v:bogus")


def test_agg_bad_spec_raises(table):
    with pytest.raises(ValueError, match="column:agg"):
        table.groupby("g").agg(x="v")


def test_multi_key_grouping(table):
    grouped = table.groupby(["g", "h"])
    assert len(grouped) == 4
    out = grouped.agg(n="v:count")
    key_counts = {(r["g"], r["h"]): r["n"] for r in out.rows()}
    assert key_counts[("a", 2)] == 2


def test_groups_returns_subframes(table):
    groups = table.groupby("g").groups()
    assert len(groups[("a",)]) == 3
    assert list(groups[("b",)]["v"]) == [2.0, 4.0]


def test_apply(table):
    out = table.groupby("g").apply(lambda sub: {"n2": len(sub) * 2})
    assert dict(zip(out["g"], out["n2"])) == {"a": 6, "b": 4}


def test_agg_output_sorted_by_key(table):
    out = table.groupby("g").agg(n="v:count")
    assert list(out["g"]) == ["a", "b"]


def test_aggregations_first_last(table):
    out = table.groupby("g").agg(first="v:first", last="v:last")
    by_g = {r["g"]: r for r in out.rows()}
    assert by_g["a"]["first"] == 1.0
    assert by_g["a"]["last"] == 5.0


def test_p95_and_median(table):
    out = table.groupby("h").agg(med="v:median", p95="v:p95")
    by_h = {r["h"]: r for r in out.rows()}
    assert by_h[2]["med"] == 4.0


# -- property tests against a naive dict-of-lists reference ----------------------


def _naive_median(vs):
    ordered = sorted(vs)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _naive_p95(vs):
    # Linear interpolation between closest ranks (numpy's default method).
    ordered = sorted(vs)
    rank = 0.95 * (len(ordered) - 1)
    lo = int(math.floor(rank))
    frac = rank - lo
    if lo + 1 >= len(ordered):
        return ordered[-1]
    return ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac


def _naive_std(vs):
    mean = math.fsum(vs) / len(vs)
    return math.sqrt(math.fsum((x - mean) ** 2 for x in vs) / len(vs))


#: Pure-python references for every built-in aggregation, deliberately
#: written without numpy so a shared bug cannot hide in both sides.
NAIVE_AGGREGATIONS = {
    "sum": math.fsum,
    "mean": lambda vs: math.fsum(vs) / len(vs),
    "min": min,
    "max": max,
    "std": _naive_std,
    "median": _naive_median,
    "p95": _naive_p95,
    "count": len,
    "first": lambda vs: vs[0],
    "last": lambda vs: vs[-1],
}


def test_naive_reference_covers_every_aggregation():
    assert set(NAIVE_AGGREGATIONS) == set(AGGREGATIONS)


_records = st.lists(
    st.fixed_dictionaries(
        {
            "g": st.sampled_from(["a", "b", "c", "d"]),
            "h": st.integers(min_value=0, max_value=2),
            "v": st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        }
    ),
    min_size=1,
    max_size=60,
)


@given(records=_records, agg_name=st.sampled_from(sorted(AGGREGATIONS)))
def test_property_agg_matches_naive_reference(records, agg_name):
    frame = Frame.from_records(records)
    out = frame.groupby("g").agg(x=("v", agg_name))

    naive: dict[str, list[float]] = {}
    for rec in records:
        naive.setdefault(rec["g"], []).append(rec["v"])

    assert list(out["g"]) == sorted(naive)
    for key, got in zip(out["g"], out["x"]):
        expected = NAIVE_AGGREGATIONS[agg_name](naive[key])
        assert float(got) == pytest.approx(expected, rel=1e-9, abs=1e-6), (
            f"{agg_name} diverged for group {key!r}: {got} vs {expected}"
        )


@given(records=_records)
def test_property_multi_key_counts_match_naive_reference(records):
    frame = Frame.from_records(records)
    out = frame.groupby(["g", "h"]).agg(n="v:count", total="v:sum")

    naive: dict[tuple, list[float]] = {}
    for rec in records:
        naive.setdefault((rec["g"], rec["h"]), []).append(rec["v"])

    got = {(r["g"], r["h"]): r for r in out.rows()}
    assert set(got) == set(naive)
    for key, vals in naive.items():
        assert got[key]["n"] == len(vals)
        assert float(got[key]["total"]) == pytest.approx(
            math.fsum(vals), rel=1e-9, abs=1e-6
        )


@given(records=_records)
def test_property_groups_partition_the_frame(records):
    frame = Frame.from_records(records)
    groups = frame.groupby("g").groups()
    assert sum(len(sub) for sub in groups.values()) == len(frame)
    recovered = sorted(
        (key[0], float(v)) for key, sub in groups.items() for v in sub["v"]
    )
    assert recovered == sorted((r["g"], float(r["v"])) for r in records)
