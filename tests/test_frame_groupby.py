"""Tests for Frame.groupby aggregation."""

import pytest

from repro.frame import Frame


@pytest.fixture
def table() -> Frame:
    return Frame(
        {
            "g": ["a", "b", "a", "b", "a"],
            "h": [1, 1, 2, 2, 2],
            "v": [1.0, 2.0, 3.0, 4.0, 5.0],
        }
    )


def test_group_count(table):
    out = table.groupby("g").size()
    assert dict(zip(out["g"], out["count"])) == {"a": 3, "b": 2}


def test_agg_string_spec(table):
    out = table.groupby("g").agg(total="v:sum", top="v:max")
    by_g = {r["g"]: r for r in out.rows()}
    assert by_g["a"]["total"] == 9.0
    assert by_g["b"]["top"] == 4.0


def test_agg_tuple_spec(table):
    out = table.groupby("g").agg(m=("v", "mean"))
    by_g = dict(zip(out["g"], out["m"]))
    assert by_g["a"] == pytest.approx(3.0)


def test_agg_callable_spec(table):
    out = table.groupby("g").agg(spread=lambda sub: sub["v"].max() - sub["v"].min())
    by_g = dict(zip(out["g"], out["spread"]))
    assert by_g["a"] == 4.0


def test_agg_unknown_aggregation_raises(table):
    with pytest.raises(ValueError, match="unknown aggregation"):
        table.groupby("g").agg(x="v:bogus")


def test_agg_bad_spec_raises(table):
    with pytest.raises(ValueError, match="column:agg"):
        table.groupby("g").agg(x="v")


def test_multi_key_grouping(table):
    grouped = table.groupby(["g", "h"])
    assert len(grouped) == 4
    out = grouped.agg(n="v:count")
    key_counts = {(r["g"], r["h"]): r["n"] for r in out.rows()}
    assert key_counts[("a", 2)] == 2


def test_groups_returns_subframes(table):
    groups = table.groupby("g").groups()
    assert len(groups[("a",)]) == 3
    assert list(groups[("b",)]["v"]) == [2.0, 4.0]


def test_apply(table):
    out = table.groupby("g").apply(lambda sub: {"n2": len(sub) * 2})
    assert dict(zip(out["g"], out["n2"])) == {"a": 6, "b": 4}


def test_agg_output_sorted_by_key(table):
    out = table.groupby("g").agg(n="v:count")
    assert list(out["g"]) == ["a", "b"]


def test_aggregations_first_last(table):
    out = table.groupby("g").agg(first="v:first", last="v:last")
    by_g = {r["g"]: r for r in out.rows()}
    assert by_g["a"]["first"] == 1.0
    assert by_g["a"]["last"] == 5.0


def test_p95_and_median(table):
    out = table.groupby("h").agg(med="v:median", p95="v:p95")
    by_h = {r["h"]: r for r in out.rows()}
    assert by_h[2]["med"] == 4.0
