"""Tests for the host CPU scheduler model (ready time & contention)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simulation.hostsched import HostCpuModel


class TestResolveWindow:
    def test_no_contention_below_capacity(self):
        model = HostCpuModel(physical_cores=64)
        usage = model.resolve_window(demand_cores=32, window_seconds=300)
        assert usage.cpu_ready_ms == 0.0
        assert usage.cpu_contention_fraction == 0.0
        assert usage.cpu_used_fraction == pytest.approx(0.5)

    def test_contention_definition(self):
        """§5.1: contention = time ready-but-not-scheduled / demanded time."""
        model = HostCpuModel(physical_cores=100, efficiency=1.0)
        usage = model.resolve_window(demand_cores=125, window_seconds=300)
        assert usage.cpu_contention_fraction == pytest.approx(0.2)
        assert usage.delivered_cores == 100

    def test_ready_time_per_core_normalised(self):
        """25% excess demand over a 300 s window -> 75 s of ready time."""
        model = HostCpuModel(physical_cores=100, efficiency=1.0)
        usage = model.resolve_window(demand_cores=125, window_seconds=300)
        assert usage.cpu_ready_ms == pytest.approx(75_000)

    def test_saturated_node_can_exceed_window(self):
        """Fig 8's ~30-minute outliers in a 300 s window are possible."""
        model = HostCpuModel(physical_cores=100, efficiency=1.0)
        usage = model.resolve_window(demand_cores=800, window_seconds=300)
        assert usage.cpu_ready_ms == pytest.approx(7 * 300 * 1000)

    def test_efficiency_discounts_capacity(self):
        model = HostCpuModel(physical_cores=100, efficiency=0.9)
        usage = model.resolve_window(demand_cores=95, window_seconds=300)
        assert usage.cpu_contention_fraction > 0

    def test_zero_demand(self):
        usage = HostCpuModel(10).resolve_window(0.0, 300)
        assert usage.cpu_used_fraction == 0.0
        assert usage.cpu_contention_fraction == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            HostCpuModel(0)
        with pytest.raises(ValueError):
            HostCpuModel(10, efficiency=0)
        with pytest.raises(ValueError):
            HostCpuModel(10).resolve_window(-1, 300)
        with pytest.raises(ValueError):
            HostCpuModel(10).resolve_window(1, 0)


class TestResolveSeries:
    def test_matches_scalar_path(self):
        model = HostCpuModel(64, efficiency=0.97)
        demands = np.asarray([0.0, 30.0, 64.0, 100.0, 200.0])
        used, ready, contention = model.resolve_series(demands, 300)
        for i, d in enumerate(demands):
            single = model.resolve_window(float(d), 300)
            assert used[i] == pytest.approx(single.cpu_used_fraction)
            assert ready[i] == pytest.approx(single.cpu_ready_ms)
            assert contention[i] == pytest.approx(single.cpu_contention_fraction)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            HostCpuModel(10).resolve_series(np.asarray([-1.0]), 300)


class TestFairShare:
    def test_no_throttle_below_capacity(self):
        model = HostCpuModel(10, efficiency=1.0)
        demands = np.asarray([2.0, 3.0])
        np.testing.assert_array_equal(model.fair_share(demands), demands)

    def test_proportional_throttle(self):
        """Noisy neighbour: everyone shrinks proportionally when saturated."""
        model = HostCpuModel(10, efficiency=1.0)
        out = model.fair_share(np.asarray([10.0, 10.0]))
        np.testing.assert_allclose(out, [5.0, 5.0])

    def test_total_never_exceeds_capacity(self):
        model = HostCpuModel(10, efficiency=1.0)
        out = model.fair_share(np.asarray([7.0, 8.0, 9.0]))
        assert out.sum() == pytest.approx(10.0)


@given(
    demand=st.floats(min_value=0, max_value=1e5),
    cores=st.floats(min_value=0.5, max_value=512),
    window=st.floats(min_value=1, max_value=3600),
)
def test_property_invariants(demand, cores, window):
    usage = HostCpuModel(cores).resolve_window(demand, window)
    assert 0.0 <= usage.cpu_used_fraction <= 1.0 + 1e-12
    assert 0.0 <= usage.cpu_contention_fraction < 1.0
    assert usage.cpu_ready_ms >= 0.0
    assert usage.delivered_cores <= min(demand, cores) + 1e-9
    # Conservation: delivered + unsatisfied = demand.
    unsatisfied = usage.cpu_ready_ms / 1000.0 / window * usage.delivered_cores
    # (ready is per-core normalised; recompute directly instead)
    assert usage.delivered_cores + max(0.0, demand - cores) == pytest.approx(
        demand, rel=1e-6, abs=1e-6
    )


@given(
    demands=st.lists(
        st.floats(min_value=0, max_value=1e4), min_size=1, max_size=30
    ),
    cores=st.floats(min_value=1, max_value=256),
)
def test_property_fair_share_bounded_and_proportional(demands, cores):
    model = HostCpuModel(cores, efficiency=1.0)
    arr = np.asarray(demands)
    out = model.fair_share(arr)
    assert np.all(out <= arr + 1e-9)
    assert out.sum() <= cores * (1 + 1e-9) or out.sum() == pytest.approx(arr.sum())
