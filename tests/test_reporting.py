"""Tests for the unified report protocol (repro.reporting)."""

import json
from dataclasses import dataclass

import pytest

from repro.reporting import (
    Report,
    ReportBase,
    canonical_bytes,
    canonical_json,
    report_diff,
    report_sha256,
    write_report,
)


@dataclass
class _Toy(ReportBase):
    value: int = 1

    def to_dict(self) -> dict:
        return {"b": self.value, "a": [1, 2], "nested": {"z": 0, "y": 1}}


class TestCanonicalJson:
    def test_sorted_indented_trailing_newline(self):
        text = canonical_json({"b": 1, "a": 2})
        assert text == '{\n  "a": 2,\n  "b": 1\n}\n'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_bytes_and_sha_agree_between_helpers_and_base(self):
        toy = _Toy()
        assert canonical_bytes(toy) == toy.canonical_bytes()
        assert report_sha256(toy) == toy.sha256()
        assert toy.canonical_json().encode("utf-8") == toy.canonical_bytes()


class TestDiff:
    def test_identical_reports_empty_diff(self):
        assert report_diff(_Toy(), _Toy()) == ""
        assert _Toy().diff_against(_Toy()) == ""

    def test_changed_value_named_in_unified_diff(self):
        diff = _Toy(2).diff_against(_Toy(1))
        assert '-  "b": 1' in diff
        assert '+  "b": 2' in diff

    def test_diff_against_path(self, tmp_path):
        prior = tmp_path / "prior.json"
        write_report(_Toy(1), prior)
        assert _Toy(1).diff_against(prior) == ""
        assert '+  "b": 3' in _Toy(3).diff_against(prior)


class TestWrite:
    def test_write_is_byte_stable(self, tmp_path):
        path = tmp_path / "report.json"
        write_report(_Toy(), path)
        first = path.read_bytes()
        write_report(_Toy(), path)
        assert path.read_bytes() == first
        assert first == canonical_bytes(_Toy())
        assert json.loads(first) == _Toy().to_dict()

    def test_write_leaves_no_temp_files(self, tmp_path):
        write_report(_Toy(), tmp_path / "r.json")
        assert [p.name for p in tmp_path.iterdir()] == ["r.json"]

    def test_base_write_matches_helper(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        _Toy().write(a)
        write_report(_Toy(), b)
        assert a.read_bytes() == b.read_bytes()


class TestProtocolAdoption:
    """Every first-class report in the repo speaks the one protocol."""

    def _reports(self):
        from repro.faults.report import FaultReport
        from repro.resilience.report import ResilienceReport
        from repro.sweep.report import SweepReport

        return [
            FaultReport(seed=1),
            ResilienceReport(seed=1),
            SweepReport(grid_sha256="0" * 64),
        ]

    def test_reports_satisfy_protocol(self):
        for report in self._reports():
            assert isinstance(report, Report)
            assert isinstance(report, ReportBase)

    def test_canonical_bytes_end_with_single_newline(self):
        for report in self._reports():
            data = canonical_bytes(report)
            assert data.endswith(b"\n")
            assert not data.endswith(b"\n\n")

    def test_sha_is_content_addressed(self):
        from repro.faults.report import FaultReport

        assert FaultReport(seed=1).sha256() == FaultReport(seed=1).sha256()
        assert FaultReport(seed=1).sha256() != FaultReport(seed=2).sha256()

    def test_crash_and_verify_reports_inherit_base(self):
        from repro.recovery.harness import CrashReport
        from repro.verify.runner import VerifyConfig, VerifyReport

        crash = CrashReport(scenario="tiny", seeds=[7], snapshot_every=25)
        verify = VerifyReport(config=VerifyConfig(), outcomes=[])
        for report in (crash, verify):
            assert isinstance(report, ReportBase)
            # The pre-existing to_json renderings and the canonical
            # writer must agree byte-for-byte (modulo the single
            # trailing newline some renderings already include).
            assert canonical_bytes(report).decode("utf-8").rstrip(
                "\n"
            ) == report.to_json().rstrip("\n")
