"""Tests for the cost-aware migration planner."""

import pytest

from repro.infrastructure.flavors import Flavor
from repro.infrastructure.vm import VM
from repro.migration.planner import MigrationPlanner
from repro.migration.precopy import PrecopyModel
from tests.conftest import make_bb


def _loaded_nodes(vm_specs):
    """Two-node BB with VMs stacked on node 0 per (vm_id, vcpus, ram)."""
    bb = make_bb(nodes=2)
    node0 = list(bb.iter_nodes())[0]
    for vm_id, vcpus, ram in vm_specs:
        node0.add_vm(VM(vm_id=vm_id, flavor=Flavor(f"f-{vm_id}", vcpus, ram)))
    return list(bb.iter_nodes())


def test_plans_moves_toward_balance():
    nodes = _loaded_nodes([(f"v{i}", 16, 32) for i in range(4)])
    planner = MigrationPlanner()
    plan = planner.plan_for_nodes(nodes, capacity_of=lambda n: n.physical.vcpus)
    assert len(plan) >= 1
    for move in plan.moves:
        assert move.source_node == nodes[0].node_id
        assert move.target_node == nodes[1].node_id
        assert move.improvement > 0


def test_balanced_cluster_plans_nothing():
    bb = make_bb(nodes=2)
    for i, node in enumerate(bb.iter_nodes()):
        node.add_vm(VM(vm_id=f"v{i}", flavor=Flavor(f"f{i}", 8, 16)))
    planner = MigrationPlanner()
    plan = planner.plan_for_nodes(
        list(bb.iter_nodes()), capacity_of=lambda n: n.physical.vcpus
    )
    assert len(plan) == 0


def test_heavy_vms_excluded_by_downtime_budget():
    """§3.2: memory-hot VMs stay put even when they would balance best."""
    nodes = _loaded_nodes([("hot", 32, 512), ("cool", 32, 8)])

    def load_view(vm):
        # The hot VM rewrites memory aggressively.
        return float(vm.flavor.vcpus), (0.95 if vm.vm_id == "hot" else 0.2)

    planner = MigrationPlanner(
        precopy=PrecopyModel(bandwidth_mbps=2_000),
        downtime_budget_s=0.05,
    )
    plan = planner.plan_for_nodes(
        nodes, capacity_of=lambda n: n.physical.vcpus, load_view=load_view
    )
    assert all(m.vm_id != "hot" for m in plan.moves)


def test_each_vm_moved_at_most_once():
    nodes = _loaded_nodes([(f"v{i}", 8, 16) for i in range(8)])
    planner = MigrationPlanner(max_moves=20)
    plan = planner.plan_for_nodes(nodes, capacity_of=lambda n: n.physical.vcpus)
    moved = [m.vm_id for m in plan.moves]
    assert len(moved) == len(set(moved))


def test_plan_aggregates():
    nodes = _loaded_nodes([(f"v{i}", 16, 64) for i in range(4)])
    plan = MigrationPlanner().plan_for_nodes(
        nodes, capacity_of=lambda n: n.physical.vcpus
    )
    assert plan.total_transfer_mb > 0
    assert plan.total_downtime_s >= 0


def test_cross_bb_planning(tiny_region):
    """§7: rebalancing across BBs of one DC."""
    bb = tiny_region.find_building_block("dc1-gp-00")
    node = list(bb.iter_nodes())[0]
    for i in range(6):
        node.add_vm(VM(vm_id=f"v{i}", flavor=Flavor(f"f{i}", 16, 32)))
    plan = MigrationPlanner().plan_cross_bb(tiny_region, datacenter="dc1")
    assert len(plan) >= 1
    # Moves stay within dc1's general-purpose nodes.
    for move in plan.moves:
        assert move.target_node.startswith("dc1-gp")


def test_cross_bb_skips_hana(tiny_region):
    hana = tiny_region.find_building_block("dc1-hana-00")
    node = list(hana.iter_nodes())[0]
    for i in range(4):
        node.add_vm(VM(vm_id=f"h{i}", flavor=Flavor(f"hf{i}", 32, 512, family="hana")))
    plan = MigrationPlanner().plan_cross_bb(tiny_region, datacenter="dc1")
    assert all(not m.vm_id.startswith("h") for m in plan.moves)


def test_cross_bb_single_node_dc_empty_plan(tiny_region):
    plan = MigrationPlanner().plan_cross_bb(tiny_region, datacenter="ghost")
    assert len(plan) == 0
