"""Tests for the end-to-end dataset generator (shared small dataset)."""

import numpy as np
import pytest

from repro.datagen import GeneratorConfig, generate_dataset
from repro.telemetry.metrics import METRIC_CATALOG


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scale": 0},
            {"days": 0},
            {"sampling_seconds": 10},
            {"vms_per_node": 0},
            {"churn_fraction": 1.5},
            {"hotspot_fraction": 0.9},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)


class TestGeneratedDataset:
    def test_inventories_populated(self, small_dataset):
        assert small_dataset.node_count > 20
        assert small_dataset.vm_count > 500
        assert len(small_dataset.events) > 0

    def test_all_table4_metrics_present(self, small_dataset):
        assert set(small_dataset.store.metrics()) == {m.name for m in METRIC_CATALOG}

    def test_every_node_has_cpu_series(self, small_dataset):
        for node_id in small_dataset.nodes["node_id"]:
            series = small_dataset.node_series(
                "vrops_hostsystem_cpu_core_utilization_percentage", str(node_id)
            )
            assert len(series) > 0

    def test_node_series_span_window(self, small_dataset, small_config):
        node_id = str(small_dataset.nodes["node_id"][0])
        series = small_dataset.node_series(
            "vrops_hostsystem_cpu_core_utilization_percentage", node_id
        )
        assert series.timestamps[0] == small_config.window_start
        assert series.timestamps[-1] < small_config.window_end

    def test_percent_metrics_bounded(self, small_dataset):
        for metric in (
            "vrops_hostsystem_cpu_core_utilization_percentage",
            "vrops_hostsystem_memory_usage_percentage",
        ):
            for _labels, series in small_dataset.store.select(metric):
                assert series.values.min() >= 0.0
                assert series.values.max() <= 100.0

    def test_network_below_nic_capacity(self, small_dataset):
        """§5.3: network load stays notably below the 200 Gbps NICs."""
        for metric in (
            "vrops_hostsystem_network_bytes_tx_kbps",
            "vrops_hostsystem_network_bytes_rx_kbps",
        ):
            for _labels, series in small_dataset.store.select(metric):
                assert series.values.max() <= 200e6

    def test_vm_placement_recorded(self, small_dataset):
        node_ids = {str(n) for n in small_dataset.nodes["node_id"]}
        for node in small_dataset.vms["node_id"]:
            assert str(node) in node_ids

    def test_hana_vms_on_hana_bbs(self, small_dataset):
        vms = small_dataset.vms
        for i in range(len(vms)):
            if str(vms["family"][i]) == "hana":
                assert "hana" in str(vms["bb_id"][i])

    def test_all_event_kinds_present(self, small_dataset):
        """§4: creation, migration, resize, and deletion events."""
        kinds = {str(e) for e in small_dataset.events.unique("event")}
        assert kinds == {"create", "migrate", "resize", "delete"}

    def test_resize_events_move_to_larger_flavors(self, small_dataset):
        from repro.infrastructure.flavors import default_catalog

        catalog = default_catalog()
        resizes = small_dataset.events.filter(
            np.asarray([str(e) == "resize" for e in small_dataset.events["event"]])
        )
        assert len(resizes) > 0
        for row in resizes.rows():
            old = catalog.get(str(row["source"]))
            new = catalog.get(str(row["target"]))
            assert new.vcpus > old.vcpus
            assert new.family == old.family

    def test_events_sorted_by_time(self, small_dataset):
        times = np.asarray(small_dataset.events["time"], dtype=float)
        assert np.all(np.diff(times) >= 0)

    def test_events_reference_known_vms(self, small_dataset):
        vm_ids = {str(v) for v in small_dataset.vms["vm_id"]}
        for vm_id in small_dataset.events["vm_id"]:
            assert str(vm_id) in vm_ids

    def test_meta_records_provenance(self, small_dataset, small_config):
        assert small_dataset.meta["seed"] == small_config.seed
        assert small_dataset.meta["sampling_seconds"] == small_config.sampling_seconds
        # A handful of 12 TB requests may not fit the scaled-down region.
        assert small_dataset.meta["unplaced_vms"] <= 0.005 * small_dataset.vm_count

    def test_hotspots_recorded_and_marked(self, small_dataset):
        hotspots = small_dataset.meta["hotspot_nodes"]
        assert len(hotspots) >= 1
        flagged = {
            str(n)
            for n, h in zip(
                small_dataset.nodes["node_id"], small_dataset.nodes["hotspot"]
            )
            if h
        }
        assert set(hotspots) == flagged

    def test_instances_total_tracks_population(self, small_dataset):
        series = small_dataset.store.query(
            "openstack_compute_instances_total",
            {"region": "region-9"},
        )
        assert len(series) == 30  # daily
        # Never more instances than the inventory has VMs.
        assert series.values.max() <= small_dataset.vm_count


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        config = GeneratorConfig(
            scale=0.01, sampling_seconds=14_400, vm_series_limit=5, days=5
        )
        a = generate_dataset(config)
        b = generate_dataset(config)
        assert a.vm_count == b.vm_count
        assert list(a.vms["node_id"]) == list(b.vms["node_id"])
        series_a = a.node_series(
            "vrops_hostsystem_cpu_core_utilization_percentage",
            str(a.nodes["node_id"][0]),
        )
        series_b = b.node_series(
            "vrops_hostsystem_cpu_core_utilization_percentage",
            str(b.nodes["node_id"][0]),
        )
        np.testing.assert_array_equal(series_a.values, series_b.values)

    def test_different_seed_differs(self):
        base = GeneratorConfig(scale=0.01, sampling_seconds=14_400, days=5)
        other = GeneratorConfig(
            scale=0.01, sampling_seconds=14_400, days=5, seed=base.seed + 1
        )
        a = generate_dataset(base)
        b = generate_dataset(other)
        assert list(a.vms["flavor"]) != list(b.vms["flavor"])
