"""Integration tests for the discrete-event regional simulation."""

import pytest

from repro.scheduler.placement import MEMORY_MB, VCPU
from repro.simulation.runner import RegionSimulation, SimulationConfig


from tests.conftest import build_tiny_region_spec


@pytest.fixture(scope="module")
def result():
    sim = RegionSimulation(
        build_tiny_region_spec(),
        SimulationConfig(
            duration_days=1.0,
            scrape_interval_s=1800,
            drs_interval_s=7200,
            arrival_rate_per_hour=12.0,
            initial_vms=60,
            seed=3,
        ),
    )
    return sim.run()


class TestLifecycle:
    def test_vms_created_and_some_deleted(self, result):
        assert result.created >= 60
        assert result.deleted > 0
        # Initial 60 + ~288 Poisson arrivals (12/hour over one day).
        assert result.created <= 60 + 450

    def test_placement_allocations_match_residents(self, result):
        """Every live VM holds exactly one allocation on its BB provider."""
        for bb in result.region.iter_building_blocks():
            provider = result.placement.provider(bb.bb_id)
            resident = bb.vms()
            expected_vcpus = sum(vm.flavor.vcpus for vm in resident)
            assert provider.used[VCPU] == pytest.approx(expected_vcpus)
            expected_mem = sum(vm.flavor.ram_mb for vm in resident)
            assert provider.used[MEMORY_MB] == pytest.approx(expected_mem)

    def test_no_capacity_overrun(self, result):
        for provider in result.placement.providers():
            for rc in (VCPU, MEMORY_MB):
                assert provider.used[rc] <= provider.capacity(rc) + 1e-6

    def test_scheduler_stats_consistent(self, result):
        stats = result.scheduler_stats
        assert stats["placed"] == stats["requests"] - stats["failed"]
        assert result.created + result.rejected >= stats["requests"] - stats["failed"]


class TestTelemetry:
    def test_scrapes_recorded(self, result):
        metric = "vrops_hostsystem_cpu_core_utilization_percentage"
        n_nodes = result.region.node_count
        assert result.store.series_count(metric) == n_nodes
        some = next(iter(result.store.select(metric)))[1]
        assert len(some) == 48  # 1 day / 1800 s

    def test_nova_gauges_present(self, result):
        assert result.store.series_count("openstack_compute_nodes_vcpus_gauge") == len(
            list(result.region.iter_building_blocks())
        )

    def test_instances_total_nonnegative_and_bounded(self, result):
        series = result.store.query(
            "openstack_compute_instances_total", {"region": "test-region"}
        )
        assert series.values.min() >= 0
        assert series.values.max() <= result.created


class TestDrsIntegration:
    def test_drs_only_touches_spread_bbs(self, result):
        """Pack BBs are exempt from load balancing (memory residency)."""
        for vm in result.region.iter_vms():
            if vm.migrations > 0:
                node = result.region.find_node(vm.node_id)
                bb = result.region.find_building_block(node.building_block)
                assert bb.policy == "spread"

    def test_events_processed(self, result):
        assert result.events_processed > 100
