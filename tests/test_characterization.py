"""Tests for workload characterisation against the paper's §5.5 findings."""

import numpy as np
import pytest

from repro.core.characterization import (
    classify_utilization,
    lifetime_by_flavor,
    lifetime_size_correlation,
    utilization_breakdown,
    vm_size_tables,
)


class TestThresholds:
    @pytest.mark.parametrize(
        "ratio,expected",
        [(0.0, "underutilized"), (0.699, "underutilized"), (0.70, "optimal"),
         (0.85, "optimal"), (0.851, "overutilized"), (1.0, "overutilized")],
    )
    def test_classification_boundaries(self, ratio, expected):
        assert classify_utilization(ratio) == expected


class TestFig14Calibration:
    def test_cpu_mostly_underutilized(self, small_dataset):
        """Fig 14a: over 80% of VMs use less than 70% of allocated CPU."""
        breakdown = utilization_breakdown(small_dataset, "cpu")
        assert breakdown.underutilized > 0.80
        assert breakdown.optimal > breakdown.overutilized

    def test_memory_three_way_split(self, small_dataset):
        """Fig 14b: ≈38% under, ≈10% optimal, remainder above 85%."""
        breakdown = utilization_breakdown(small_dataset, "memory")
        assert breakdown.underutilized == pytest.approx(0.38, abs=0.08)
        assert breakdown.optimal == pytest.approx(0.10, abs=0.06)
        assert breakdown.overutilized == pytest.approx(0.52, abs=0.10)

    def test_shares_sum_to_one(self, small_dataset):
        for resource in ("cpu", "memory"):
            b = utilization_breakdown(small_dataset, resource)
            assert b.underutilized + b.optimal + b.overutilized == pytest.approx(1.0)

    def test_unknown_resource_raises(self, small_dataset):
        with pytest.raises(ValueError):
            utilization_breakdown(small_dataset, "gpu")


class TestSizeTables:
    def test_table_shapes(self, small_dataset):
        table1, table2 = vm_size_tables(small_dataset)
        assert list(table1["category"]) == ["small", "medium", "large", "xlarge"]
        assert int(np.sum(table1["vm_count"])) == small_dataset.vm_count
        assert int(np.sum(table2["vm_count"])) == small_dataset.vm_count

    def test_table1_ordering_matches_paper(self, small_dataset):
        """Table 1: small > medium > large > xlarge."""
        table1, _ = vm_size_tables(small_dataset)
        counts = list(np.asarray(table1["vm_count"], dtype=int))
        assert counts[0] > counts[1] > counts[2] >= counts[3]

    def test_table2_medium_dominates(self, small_dataset):
        """Table 2: the 2–64 GiB class holds ~91% of all VMs."""
        _, table2 = vm_size_tables(small_dataset)
        counts = dict(zip(table2["category"], np.asarray(table2["vm_count"], dtype=int)))
        assert counts["medium"] / small_dataset.vm_count > 0.80
        # And xlarge (HANA) outnumbers both small and large.
        assert counts["xlarge"] > counts["large"]


class TestLifetimes:
    def test_min_instances_filter(self, small_dataset):
        table = lifetime_by_flavor(small_dataset, min_instances=30)
        assert np.all(np.asarray(table["vm_count"], dtype=float) >= 30)

    def test_lifetimes_span_minutes_to_months(self, small_dataset):
        lifetimes = np.asarray(small_dataset.vms["lifetime_seconds"], dtype=float)
        assert lifetimes.min() < 3 * 3600
        assert lifetimes.max() > 180 * 86_400

    def test_weak_size_lifetime_correlation(self, small_dataset):
        """Fig 15: 'conclusions from VM size to lifetime are limited'."""
        assert abs(lifetime_size_correlation(small_dataset)) < 0.35

    def test_sorted_by_mean_lifetime(self, small_dataset):
        table = lifetime_by_flavor(small_dataset)
        means = np.asarray(table["mean_lifetime_s"], dtype=float)
        assert np.all(np.diff(means) <= 0)
