"""Tests for the §7-motivated schedulers: contention-, lifetime-aware, holistic."""

import pytest

from repro.core.advanced_placement import (
    ContentionAwareScheduler,
    HolisticNodeScheduler,
    LifetimeAwareScheduler,
)
from repro.infrastructure.flavors import default_catalog
from repro.scheduler.pipeline import NoValidHost
from repro.scheduler.placement import PlacementService
from repro.scheduler.request import RequestSpec


@pytest.fixture
def placement(tiny_region):
    service = PlacementService()
    for bb in tiny_region.iter_building_blocks():
        service.register_building_block(bb)
    return service


@pytest.fixture
def catalog():
    return default_catalog()


def request(catalog, vm_id="v1", flavor="g_c4_m16", hints=None) -> RequestSpec:
    return RequestSpec(
        vm_id=vm_id, flavor=catalog.get(flavor), scheduler_hints=hints or {}
    )


class TestContentionAware:
    def test_avoids_contended_host(self, tiny_region, placement, catalog):
        # dc1-gp-00 is bigger (would win on free resources) but contended.
        scheduler = ContentionAwareScheduler(
            tiny_region,
            placement,
            contention_scores={"dc1-gp-00": 35.0, "dc2-gp-00": 0.5},
            contention_multiplier=5.0,
        )
        result = scheduler.schedule(request(catalog))
        assert result.host_id == "dc2-gp-00"

    def test_zero_contention_behaves_like_nova(self, tiny_region, placement, catalog):
        scheduler = ContentionAwareScheduler(
            tiny_region, placement, contention_scores={}
        )
        result = scheduler.schedule(request(catalog))
        assert result.host_id == "dc1-gp-00"  # more free capacity wins


class TestLifetimeAware:
    def test_short_lived_vm_prefers_short_churn_host(
        self, tiny_region, placement, catalog
    ):
        scheduler = LifetimeAwareScheduler(
            tiny_region,
            placement,
            churn_classes={"dc1-gp-00": "long", "dc2-gp-00": "short"},
            affinity_multiplier=10.0,
        )
        result = scheduler.schedule(
            request(catalog, hints={"expected_lifetime_s": "1800"})
        )
        assert result.host_id == "dc2-gp-00"

    def test_long_lived_vm_prefers_long_churn_host(
        self, tiny_region, placement, catalog
    ):
        scheduler = LifetimeAwareScheduler(
            tiny_region,
            placement,
            churn_classes={"dc1-gp-00": "short", "dc2-gp-00": "long"},
            affinity_multiplier=10.0,
        )
        result = scheduler.schedule(
            request(catalog, hints={"expected_lifetime_s": str(90 * 86_400)})
        )
        assert result.host_id == "dc2-gp-00"

    def test_no_hint_is_neutral(self, tiny_region, placement, catalog):
        scheduler = LifetimeAwareScheduler(
            tiny_region,
            placement,
            churn_classes={"dc1-gp-00": "short"},
            affinity_multiplier=10.0,
        )
        result = scheduler.schedule(request(catalog))
        assert result.host_id == "dc1-gp-00"  # free capacity decides


class TestHolistic:
    def test_places_on_individual_node(self, tiny_region, placement, catalog):
        scheduler = HolisticNodeScheduler(tiny_region, placement)
        result = scheduler.schedule(request(catalog))
        node = tiny_region.find_node(result.host_id)  # raises if not a node
        assert node.building_block in ("dc1-gp-00", "dc2-gp-00")

    def test_claim_booked_against_owning_bb(self, tiny_region, placement, catalog):
        scheduler = HolisticNodeScheduler(tiny_region, placement)
        result = scheduler.schedule(request(catalog))
        allocation = placement.allocation_for("v1")
        assert allocation.provider_id == scheduler.node_building_block(result.host_id)

    def test_respects_aggregate_exclusivity(self, tiny_region, placement, catalog):
        scheduler = HolisticNodeScheduler(tiny_region, placement)
        for i in range(10):
            result = scheduler.schedule(request(catalog, vm_id=f"v{i}"))
            assert "hana" not in result.host_id

    def test_sees_intra_bb_state(self, tiny_region, placement, catalog):
        """Unlike the two-layer split, candidates are nodes, so the ranked
        list contains every node of the surviving BBs."""
        scheduler = HolisticNodeScheduler(tiny_region, placement)
        states = scheduler.node_states()
        assert len(states) == tiny_region.node_count

    def test_no_valid_node_raises(self, tiny_region, placement, catalog):
        scheduler = HolisticNodeScheduler(tiny_region, placement)
        spec = RequestSpec(
            vm_id="vx",
            flavor=catalog.get("g_c4_m16"),
            availability_zone="nonexistent",
        )
        with pytest.raises(NoValidHost):
            scheduler.schedule(spec)
        assert scheduler.stats["failed"] == 1
