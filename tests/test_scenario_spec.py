"""Tests for the unified ScenarioSpec (repro.config)."""

import json
import warnings

import pytest

from repro.config import (
    ScenarioSpec,
    looks_like_legacy_chaos_dict,
    looks_like_legacy_faults_dict,
    scheduler_config_from_dict,
    scheduler_config_to_dict,
    spec_from_legacy_chaos_dict,
    spec_from_legacy_faults_dict,
)
from repro.faults.config import FaultConfig
from repro.faults.scenario import ScenarioConfig, scenario_topology
from repro.resilience.chaos import ChaosConfig, chaos_topology
from repro.resilience.config import ResilienceConfig
from repro.scheduler.config import SchedulerConfig


class TestRoundTrip:
    def test_defaults_round_trip(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_full_composition_round_trips(self):
        spec = ScenarioSpec(
            topology="chaos",
            duration_days=0.5,
            seed=11,
            scheduler=SchedulerConfig(max_attempts=2, alternates=1),
            faults=FaultConfig(seed=3, host_failure_rate_per_day=2.0),
            resilience=ResilienceConfig(seed=9),
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.sha256() == spec.sha256()

    def test_to_dict_is_json_serialisable(self):
        spec = ScenarioSpec(faults=FaultConfig(), resilience=ResilienceConfig())
        json.dumps(spec.to_dict())

    def test_sha256_changes_with_any_field(self):
        base = ScenarioSpec()
        assert base.sha256() != ScenarioSpec(seed=8).sha256()
        assert (
            base.sha256()
            != ScenarioSpec(scheduler=SchedulerConfig(alternates=1)).sha256()
        )

    def test_sections_omitted_when_unset(self):
        doc = ScenarioSpec().to_dict()
        assert "faults" not in doc
        assert "resilience" not in doc
        assert "scheduler" not in doc


class TestValidation:
    def test_unknown_key_rejected_by_name(self):
        with pytest.raises(ValueError) as exc:
            ScenarioSpec.from_dict({"topolgy": "lab"})
        assert "topolgy" in str(exc.value)
        assert "known:" in str(exc.value)

    def test_unknown_scheduler_key_rejected(self):
        with pytest.raises(ValueError) as exc:
            ScenarioSpec.from_dict({"scheduler": {"max_attemps": 2}})
        assert "max_attemps" in str(exc.value)

    def test_nested_section_errors_propagate(self):
        with pytest.raises(ValueError, match="host_failure_rate_per_day"):
            ScenarioSpec.from_dict(
                {"faults": {"host_failure_rate_per_day": -1.0}}
            )

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            ScenarioSpec.from_dict([1, 2])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"topology": "mars"},
            {"duration_days": 0.0},
            {"building_blocks": 0},
            {"region_scale": -0.1},
            {"scheduler_factory": "magic"},
            {"initial_vms": -1},
        ],
    )
    def test_bad_scalars_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioSpec(**kwargs)

    def test_scheduler_with_live_objects_not_serialisable(self):
        spec = ScenarioSpec(scheduler=SchedulerConfig(filters=()))
        with pytest.raises(ValueError, match="filter"):
            spec.to_dict()

    def test_scheduler_dict_bridge_round_trips(self):
        config = SchedulerConfig(max_attempts=5, use_index=False)
        assert scheduler_config_from_dict(
            scheduler_config_to_dict(config)
        ) == config


class TestTopologies:
    def test_lab_matches_fault_scenario_topology(self):
        # Byte-compat contract: a spec-run fault scenario must place on
        # the exact same region the legacy path built.
        assert (
            ScenarioSpec(building_blocks=3, nodes_per_bb=4).topology_spec()
            == scenario_topology(ScenarioConfig())
        )

    def test_chaos_matches_chaos_topology(self):
        assert (
            ScenarioSpec(topology="chaos").topology_spec()
            == chaos_topology(ChaosConfig())
        )

    def test_paper_topology_scales(self):
        small = ScenarioSpec(topology="paper", region_scale=0.02)
        bigger = ScenarioSpec(topology="paper", region_scale=0.05)
        n_small = sum(
            bb.node_count
            for dc in small.topology_spec().datacenters
            for bb in dc.building_blocks
        )
        n_bigger = sum(
            bb.node_count
            for dc in bigger.topology_spec().datacenters
            for bb in dc.building_blocks
        )
        assert 0 < n_small < n_bigger


class TestRun:
    def test_run_matches_legacy_fault_scenario(self):
        from repro.faults.scenario import run_fault_scenario

        faults = FaultConfig(seed=7, host_failure_rate_per_day=4.0)
        spec = ScenarioSpec(
            duration_days=0.1, initial_vms=20, arrival_rate_per_hour=4.0,
            faults=faults,
        )
        legacy = run_fault_scenario(
            ScenarioConfig(
                duration_days=0.1, initial_vms=20, arrival_rate_per_hour=4.0,
                faults=faults,
            )
        )
        assert (
            spec.run().fault_report.to_json()
            == legacy.fault_report.to_json()
        )


class TestLegacyShims:
    def test_flat_faults_dict_detected(self):
        assert looks_like_legacy_faults_dict(
            {"seed": 1, "host_failure_rate_per_day": 2.0}
        )
        assert not looks_like_legacy_faults_dict({"faults": {}})
        assert not looks_like_legacy_faults_dict({})

    def test_sections_only_chaos_dict_detected(self):
        assert looks_like_legacy_chaos_dict({"faults": {}, "resilience": {}})
        assert not looks_like_legacy_chaos_dict({"topology": "chaos"})
        assert not looks_like_legacy_chaos_dict({})

    def test_faults_shim_warns_and_applies(self):
        with pytest.warns(DeprecationWarning, match="ScenarioSpec"):
            spec = spec_from_legacy_faults_dict(
                {"seed": 5, "host_failure_rate_per_day": 1.0}, ScenarioSpec()
            )
        assert spec.faults.seed == 5
        assert spec.faults.host_failure_rate_per_day == 1.0

    def test_chaos_shim_warns_and_applies(self):
        with pytest.warns(DeprecationWarning, match="ScenarioSpec"):
            spec = spec_from_legacy_chaos_dict(
                {"resilience": {"seed": 9}},
                ScenarioSpec(topology="chaos", faults=FaultConfig(seed=2)),
            )
        assert spec.resilience.seed == 9
        # The base's faults survive a resilience-only legacy file.
        assert spec.faults.seed == 2

    def test_canonical_shape_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ScenarioSpec.from_dict({"faults": {"seed": 3}})
