"""Tests for the text renderers."""

import numpy as np

from repro.analysis.render import render_cdf, render_heatmap, render_series_sparkline
from repro.core.cdf import cdf_points
from repro.core.heatmaps import HeatmapResult


def _heatmap(matrix) -> HeatmapResult:
    matrix = np.asarray(matrix, dtype=float)
    return HeatmapResult(
        resource="cpu",
        matrix=matrix,
        day_starts=np.arange(matrix.shape[0]) * 86_400.0,
        columns=[f"n{i}" for i in range(matrix.shape[1])],
        level="node",
    )


class TestHeatmapRender:
    def test_one_line_per_day(self):
        text = render_heatmap(_heatmap(np.full((5, 8), 50.0)))
        assert len(text.splitlines()) == 6  # header + 5 rows

    def test_shading_tracks_utilisation(self):
        text = render_heatmap(_heatmap([[100.0, 0.0]]))
        row = text.splitlines()[1]
        assert row[0] == " "  # fully free
        assert row[1] == "█"  # fully utilised

    def test_missing_cells_marked(self):
        text = render_heatmap(_heatmap([[np.nan, 50.0]]))
        assert text.splitlines()[1][0] == "·"

    def test_wide_matrix_subsampled(self):
        text = render_heatmap(_heatmap(np.full((2, 500), 50.0)), max_columns=40)
        assert len(text.splitlines()[1]) == 40

    def test_tall_matrix_subsampled(self):
        text = render_heatmap(_heatmap(np.full((90, 3), 50.0)), max_rows=10)
        assert len(text.splitlines()) == 11

    def test_real_heatmap_renders(self, small_dataset):
        from repro.analysis.figures import fig5_dc_cpu_heatmap

        text = render_heatmap(fig5_dc_cpu_heatmap(small_dataset))
        assert "cpu" in text
        assert len(text.splitlines()) == 31


class TestCdfRender:
    def test_axes_and_dots(self):
        values, fractions = cdf_points([1.0, 2.0, 3.0, 10.0])
        text = render_cdf(values, fractions, title="demo")
        assert text.splitlines()[0] == "demo"
        assert "•" in text
        assert "1.00 |" in text
        assert "0.00 |" in text

    def test_empty_safe(self):
        assert "(empty)" in render_cdf(np.asarray([]), np.asarray([]), title="x")

    def test_constant_values(self):
        values, fractions = cdf_points([5.0, 5.0, 5.0])
        text = render_cdf(values, fractions)
        assert "•" in text


class TestSparkline:
    def test_length_capped(self):
        line = render_series_sparkline(np.arange(1000), width=40)
        assert len(line) == 40

    def test_monotone_input_monotone_blocks(self):
        line = render_series_sparkline(np.arange(8))
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_input(self):
        line = render_series_sparkline(np.full(10, 3.0))
        assert len(set(line)) == 1

    def test_empty(self):
        assert render_series_sparkline(np.asarray([])) == ""
