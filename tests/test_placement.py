"""Tests for the placement service: inventories, claims, moves."""

import pytest
from hypothesis import given, strategies as st

from repro.infrastructure.capacity import Capacity
from repro.scheduler.placement import (
    DISK_GB,
    MEMORY_MB,
    VCPU,
    AllocationError,
    PlacementService,
    ResourceProvider,
)
from tests.conftest import make_bb


@pytest.fixture
def placement(tiny_region):
    service = PlacementService()
    for bb in tiny_region.iter_building_blocks():
        service.register_building_block(bb)
    return service


class TestProviders:
    def test_register_builds_inventories(self, placement):
        provider = placement.provider("dc1-gp-00")
        assert provider.capacity(VCPU) == 4 * 64 * 4.0
        assert provider.capacity(MEMORY_MB) == 4 * 512 * 1024
        assert provider.free(VCPU) == provider.capacity(VCPU)

    def test_duplicate_registration_rejected(self, placement, tiny_region):
        bb = tiny_region.find_building_block("dc1-gp-00")
        with pytest.raises(AllocationError, match="already registered"):
            placement.register_building_block(bb)

    def test_unknown_provider_raises(self, placement):
        with pytest.raises(AllocationError, match="unknown provider"):
            placement.provider("ghost")

    def test_inventory_validation(self):
        provider = ResourceProvider("p")
        with pytest.raises(ValueError):
            provider.set_inventory(VCPU, total=-1)
        with pytest.raises(ValueError):
            provider.set_inventory("BOGUS", total=1)

    def test_reserved_reduces_capacity(self):
        provider = ResourceProvider("p")
        provider.set_inventory(VCPU, total=100, ratio=2.0, reserved=10)
        assert provider.capacity(VCPU) == 180

    def test_remove_provider_with_allocations_refused(self, placement):
        placement.claim("c1", "dc1-gp-00", Capacity(vcpus=1, memory_mb=1024, disk_gb=1))
        with pytest.raises(AllocationError, match="still has allocations"):
            placement.remove_provider("dc1-gp-00")
        placement.release("c1")
        placement.remove_provider("dc1-gp-00")


class TestClaims:
    REQ = Capacity(vcpus=8, memory_mb=32 * 1024, disk_gb=100)

    def test_claim_reserves_resources(self, placement):
        before = placement.provider("dc1-gp-00").free(VCPU)
        placement.claim("c1", "dc1-gp-00", self.REQ)
        assert placement.provider("dc1-gp-00").free(VCPU) == before - 8

    def test_double_claim_rejected(self, placement):
        placement.claim("c1", "dc1-gp-00", self.REQ)
        with pytest.raises(AllocationError, match="already has an allocation"):
            placement.claim("c1", "dc2-gp-00", self.REQ)

    def test_oversized_claim_rejected_atomically(self, placement):
        provider = placement.provider("dc1-gp-00")
        huge = Capacity(vcpus=1, memory_mb=provider.capacity(MEMORY_MB) + 1, disk_gb=1)
        with pytest.raises(AllocationError, match="does not fit"):
            placement.claim("c1", "dc1-gp-00", huge)
        assert provider.used[VCPU] == 0.0  # nothing partially booked

    def test_release_returns_resources(self, placement):
        placement.claim("c1", "dc1-gp-00", self.REQ)
        placement.release("c1")
        provider = placement.provider("dc1-gp-00")
        assert provider.used[VCPU] == 0.0
        assert placement.allocation_for("c1") is None

    def test_release_unknown_consumer_raises(self, placement):
        with pytest.raises(AllocationError, match="has no allocation"):
            placement.release("ghost")

    def test_move_rehomes_allocation(self, placement):
        placement.claim("c1", "dc1-gp-00", self.REQ)
        placement.move("c1", "dc2-gp-00")
        assert placement.allocation_for("c1").provider_id == "dc2-gp-00"
        assert placement.provider("dc1-gp-00").used[VCPU] == 0.0
        assert placement.provider("dc2-gp-00").used[VCPU] == 8.0

    def test_move_that_does_not_fit_keeps_source(self, placement):
        bb_capacity = placement.provider("dc2-gp-00").capacity(VCPU)
        placement.claim("big", "dc2-gp-00", Capacity(vcpus=bb_capacity, memory_mb=1, disk_gb=1))
        placement.claim("c1", "dc1-gp-00", self.REQ)
        with pytest.raises(AllocationError, match="does not fit"):
            placement.move("c1", "dc2-gp-00")
        assert placement.allocation_for("c1").provider_id == "dc1-gp-00"

    def test_failed_claim_leaves_every_class_untouched(self, placement):
        """A multi-class claim that fails must not book anything — including
        on a zero-total inventory, where even a transient write would leak."""
        provider = placement.provider("dc1-gp-00")
        provider.set_inventory(DISK_GB, total=0)
        placement.claim(
            "c0", "dc1-gp-00", Capacity(vcpus=4, memory_mb=4096, disk_gb=0)
        )
        before = dict(provider.used)
        with pytest.raises(AllocationError, match="does not fit"):
            placement.claim(
                "c1", "dc1-gp-00", Capacity(vcpus=8, memory_mb=8192, disk_gb=1)
            )
        assert provider.used == before
        assert placement.allocation_for("c1") is None

    def test_nan_claim_rejected_without_booking(self, placement):
        provider = placement.provider("dc1-gp-00")
        with pytest.raises(AllocationError, match="invalid"):
            placement.claim(
                "c1",
                "dc1-gp-00",
                Capacity(vcpus=float("nan"), memory_mb=1024, disk_gb=1),
            )
        assert all(v == 0.0 for v in provider.used.values())
        assert placement.allocation_for("c1") is None

    def test_allocations_on(self, placement):
        placement.claim("c1", "dc1-gp-00", self.REQ)
        placement.claim("c2", "dc1-gp-00", self.REQ)
        assert len(placement.allocations_on("dc1-gp-00")) == 2

    def test_usage_report_fractions(self, placement):
        placement.claim("c1", "dc1-gp-00", self.REQ)
        report = placement.usage_report()
        assert 0 < report["dc1-gp-00"][VCPU] < 1
        assert report["dc2-gp-00"][VCPU] == 0.0


@given(
    requests=st.lists(
        st.tuples(
            st.floats(min_value=0.5, max_value=64),
            st.floats(min_value=256, max_value=128 * 1024),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_claims_never_exceed_capacity(requests):
    """No interleaving of claims can oversubscribe the provider."""
    bb = make_bb("bb", nodes=2)
    service = PlacementService()
    service.register_building_block(bb)
    provider = service.provider("bb")
    for i, (vcpus, mem) in enumerate(requests):
        try:
            service.claim(f"c{i}", "bb", Capacity(vcpus=vcpus, memory_mb=mem, disk_gb=1))
        except AllocationError:
            pass
        assert provider.used[VCPU] <= provider.capacity(VCPU) + 1e-6
        assert provider.used[MEMORY_MB] <= provider.capacity(MEMORY_MB) + 1e-6
        assert provider.used[DISK_GB] <= provider.capacity(DISK_GB) + 1e-6


@given(
    seq=st.lists(st.sampled_from(["claim", "release", "move"]), max_size=40),
)
def test_property_claim_release_conservation(seq):
    """used == sum of live allocations after any claim/release/move mix."""
    bbs = [make_bb("bb-a", nodes=1), make_bb("bb-b", nodes=1)]
    service = PlacementService()
    for bb in bbs:
        service.register_building_block(bb)
    live: set[str] = set()
    counter = 0
    req = Capacity(vcpus=4, memory_mb=4096, disk_gb=10)
    for op in seq:
        try:
            if op == "claim":
                cid = f"c{counter}"
                counter += 1
                service.claim(cid, "bb-a", req)
                live.add(cid)
            elif op == "release" and live:
                cid = sorted(live)[0]
                service.release(cid)
                live.discard(cid)
            elif op == "move" and live:
                cid = sorted(live)[-1]
                current = service.allocation_for(cid).provider_id
                target = "bb-b" if current == "bb-a" else "bb-a"
                service.move(cid, target)
        except AllocationError:
            pass
        total_used = sum(
            p.used.get(VCPU, 0.0) for p in service.providers()
        )
        assert total_used == pytest.approx(len(live) * 4.0)
