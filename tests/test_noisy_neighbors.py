"""Tests for the noisy-neighbour victim analysis."""

import numpy as np
import pytest

from repro.core.noisy_neighbors import (
    blast_radius,
    node_degradation_windows,
    victim_exposures,
    victim_report,
)


def test_degradation_windows_only_contended_nodes(small_dataset):
    windows = node_degradation_windows(small_dataset, threshold_pct=10.0)
    hotspots = set(small_dataset.meta["hotspot_nodes"])
    assert windows, "the dataset must contain contended nodes"
    # Every flagged node shows samples above the threshold; hotspots are in.
    assert hotspots & set(windows)
    for mask in windows.values():
        assert mask.any()


def test_victims_live_on_contended_nodes(small_dataset):
    exposures = victim_exposures(small_dataset)
    assert exposures, "contended nodes host VMs, so victims must exist"
    contended = set(node_degradation_windows(small_dataset))
    for e in exposures:
        assert e.node_id in contended
        assert 0.0 < e.exposed_share <= 1.0
        assert e.mean_contention_when_exposed > 10.0
        assert e.peak_contention >= e.mean_contention_when_exposed - 1e-9


def test_victims_sorted_by_exposure(small_dataset):
    exposures = victim_exposures(small_dataset)
    shares = [e.exposed_share for e in exposures]
    assert shares == sorted(shares, reverse=True)


def test_higher_threshold_fewer_victims(small_dataset):
    strict = victim_exposures(small_dataset, threshold_pct=10.0)
    severe = victim_exposures(small_dataset, threshold_pct=40.0)
    assert len(severe) <= len(strict)


def test_report_matches_exposures(small_dataset):
    report = victim_report(small_dataset)
    exposures = victim_exposures(small_dataset)
    assert len(report) == len(exposures)
    assert list(report["vm_id"])[:3] == [e.vm_id for e in exposures[:3]]


def test_blast_radius_small_but_nonzero(small_dataset):
    """§5.1's shape: contention is real but confined — only a minority of
    the VM population is exposed."""
    radius = blast_radius(small_dataset)
    assert radius["affected_vms"] > 0
    assert radius["affected_vm_share"] < 0.30
    assert radius["affected_nodes"] >= 1
    assert 0.0 < radius["worst_exposed_share"] <= 1.0
