"""Tests for QoS classes, NUMA topology, and CPU pinning (§8 outlook)."""

import pytest

from repro.infrastructure.flavors import Flavor, default_catalog
from repro.qos.classes import QOS_CLASSES, QosClass, qos_for_flavor
from repro.qos.numa import NumaTopology
from repro.qos.pinning import CpuPinningAllocator, PinningError


class TestQosClasses:
    def test_three_tiers(self):
        assert set(QOS_CLASSES) == {"guaranteed", "burstable", "besteffort"}

    def test_guaranteed_is_dedicated(self):
        guaranteed = QOS_CLASSES["guaranteed"]
        assert guaranteed.max_cpu_overcommit == 1.0
        assert guaranteed.requires_pinning
        assert guaranteed.requires_numa_alignment

    def test_ceilings_follow_paper_thresholds(self):
        """10% strict / 30% moderate thresholds of §5.1."""
        assert QOS_CLASSES["burstable"].contention_ceiling_pct == 10.0
        assert QOS_CLASSES["besteffort"].contention_ceiling_pct == 30.0

    def test_hana_defaults_to_guaranteed(self):
        catalog = default_catalog()
        assert qos_for_flavor(catalog.get("h_c64_m1024")).name == "guaranteed"
        assert qos_for_flavor(catalog.get("g_c2_m4")).name == "besteffort"
        assert qos_for_flavor(catalog.get("g_c32_m128")).name == "burstable"

    def test_explicit_extra_spec_wins(self):
        flavor = Flavor("f", 2, 4, extra_specs=(("qos_class", "guaranteed"),))
        assert qos_for_flavor(flavor).name == "guaranteed"
        bad = Flavor("f2", 2, 4, extra_specs=(("qos_class", "platinum"),))
        with pytest.raises(ValueError):
            qos_for_flavor(bad)

    def test_validation(self):
        with pytest.raises(ValueError):
            QosClass("x", max_cpu_overcommit=0.5, contention_ceiling_pct=1,
                     requires_pinning=False, requires_numa_alignment=False)


class TestNumaTopology:
    def test_symmetric_split(self):
        topo = NumaTopology.symmetric(sockets=2, cores_total=128, memory_mb_total=2048)
        assert len(topo.nodes) == 2
        assert all(n.cores == 64 for n in topo.nodes)
        assert all(n.memory_mb == 1024 for n in topo.nodes)

    def test_small_vm_lands_on_one_node(self):
        topo = NumaTopology.symmetric(2, 128, 1024 * 1024)
        placement = topo.place("v1", Flavor("f", vcpus=8, ram_gib=64))
        assert placement.aligned

    def test_wide_vm_spans_sockets(self):
        topo = NumaTopology.symmetric(2, 128, 1024 * 1024)
        placement = topo.place("v1", Flavor("f", vcpus=96, ram_gib=256))
        assert placement.node_count == 2
        assert not placement.aligned

    def test_reservations_reduce_free(self):
        topo = NumaTopology.symmetric(2, 128, 1024 * 1024)
        topo.place("v1", Flavor("f", vcpus=60, ram_gib=100))
        busiest = max(topo.nodes, key=lambda n: n.reserved_cores)
        assert busiest.free_cores == 4

    def test_release_restores(self):
        topo = NumaTopology.symmetric(2, 128, 1024 * 1024)
        topo.place("v1", Flavor("f", vcpus=60, ram_gib=100))
        topo.release("v1")
        assert all(n.reserved_cores == 0 for n in topo.nodes)
        with pytest.raises(KeyError):
            topo.release("v1")

    def test_place_rejects_overflow(self):
        topo = NumaTopology.symmetric(2, 16, 64 * 1024)
        with pytest.raises(ValueError, match="does not fit"):
            topo.place("v1", Flavor("f", vcpus=32, ram_gib=8))

    def test_duplicate_placement_rejected(self):
        topo = NumaTopology.symmetric(2, 128, 1024 * 1024)
        topo.place("v1", Flavor("f", vcpus=4, ram_gib=8))
        with pytest.raises(ValueError, match="already placed"):
            topo.place("v1", Flavor("f2", vcpus=4, ram_gib=8))

    def test_alignment_score_degrades_with_fragmentation(self):
        topo = NumaTopology.symmetric(2, 64, 512 * 1024)
        flavor = Flavor("f", vcpus=24, ram_gib=64)
        assert topo.alignment_score(flavor) == 1.0
        # Fragment both sockets so 24 contiguous cores no longer exist.
        topo.place("a", Flavor("fa", vcpus=16, ram_gib=16))
        topo.place("b", Flavor("fb", vcpus=16, ram_gib=16))
        score = topo.alignment_score(flavor)
        assert 0.0 < score < 1.0

    def test_alignment_score_zero_when_full(self):
        topo = NumaTopology.symmetric(1, 8, 16 * 1024)
        topo.place("a", Flavor("fa", vcpus=8, ram_gib=8))
        assert topo.alignment_score(Flavor("f", vcpus=2, ram_gib=2)) == 0.0


class TestCpuPinning:
    def test_pin_returns_distinct_cores(self):
        allocator = CpuPinningAllocator(total_cores=16)
        cores = allocator.pin("v1", 4)
        assert len(cores) == 4
        assert len(set(cores)) == 4
        assert all(c >= allocator.reserved_system_cores for c in cores)

    def test_pins_do_not_overlap(self):
        allocator = CpuPinningAllocator(total_cores=16)
        a = set(allocator.pin("v1", 4))
        b = set(allocator.pin("v2", 4))
        assert not a & b

    def test_shared_pool_shrinks(self):
        allocator = CpuPinningAllocator(total_cores=16, reserved_system_cores=2)
        assert allocator.shared_cores == 14
        allocator.pin("v1", 6)
        assert allocator.shared_cores == 8
        assert allocator.effective_shared_supply(100.0) == 8

    def test_unpin_restores(self):
        allocator = CpuPinningAllocator(total_cores=16)
        allocator.pin("v1", 6)
        allocator.unpin("v1")
        assert allocator.shared_cores == 14
        with pytest.raises(PinningError):
            allocator.unpin("v1")

    def test_over_pinning_rejected(self):
        allocator = CpuPinningAllocator(total_cores=8, reserved_system_cores=2)
        with pytest.raises(PinningError, match="only 6 available"):
            allocator.pin("v1", 7)

    def test_double_pin_rejected(self):
        allocator = CpuPinningAllocator(total_cores=16)
        allocator.pin("v1", 2)
        with pytest.raises(PinningError, match="already"):
            allocator.pin("v1", 2)

    def test_cores_of(self):
        allocator = CpuPinningAllocator(total_cores=16)
        cores = allocator.pin("v1", 3)
        assert allocator.cores_of("v1") == cores
        with pytest.raises(PinningError):
            allocator.cores_of("ghost")

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuPinningAllocator(total_cores=0)
        with pytest.raises(ValueError):
            CpuPinningAllocator(total_cores=4, reserved_system_cores=4)
