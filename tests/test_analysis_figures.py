"""Tests for the per-figure analysis builders (Figs 5-15)."""

import numpy as np
import pytest

from repro.analysis import figures


class TestHeatmapFigures:
    def test_fig5_defaults_to_first_dc(self, small_dataset):
        heatmap = figures.fig5_dc_cpu_heatmap(small_dataset)
        dc = small_dataset.datacenters()[0]
        assert heatmap.shape[1] == len(small_dataset.nodes_in(dc_id=dc))

    def test_fig6_bb_level(self, small_dataset):
        heatmap = figures.fig6_bb_cpu_heatmap(small_dataset)
        assert heatmap.level == "building_block"
        assert heatmap.shape[1] >= 2

    def test_fig7_picks_most_imbalanced_bb(self, small_dataset):
        from repro.core.imbalance import bb_imbalance_report

        heatmap = figures.fig7_intra_bb_cpu_heatmap(small_dataset)
        report = bb_imbalance_report(small_dataset)
        eligible = report.filter(np.asarray(report["node_count"], dtype=float) >= 3)
        assert set(heatmap.columns) <= {
            f"{bb}-node-{i:03d}"
            for bb in [str(b) for b in eligible["bb_id"]]
            for i in range(200)
        }

    def test_fig7_explicit_bb(self, small_dataset):
        bb = small_dataset.building_blocks()[0]
        heatmap = figures.fig7_intra_bb_cpu_heatmap(small_dataset, bb_id=bb)
        assert all(col.startswith(bb) for col in heatmap.columns)

    @pytest.mark.parametrize(
        "builder,resource",
        [
            (figures.fig10_memory_heatmap, "memory"),
            (figures.fig11_network_tx_heatmap, "network_tx"),
            (figures.fig12_network_rx_heatmap, "network_rx"),
            (figures.fig13_storage_heatmap, "storage"),
        ],
    )
    def test_resource_heatmaps(self, small_dataset, builder, resource):
        heatmap = builder(small_dataset)
        assert heatmap.resource == resource
        assert heatmap.shape[0] == 30


class TestSeriesFigures:
    def test_fig8_long_format(self, small_dataset):
        frame = figures.fig8_top_ready_nodes(small_dataset, n=5)
        assert set(frame.names) == {"node_id", "timestamp", "ready_ms"}
        assert len(frame.unique("node_id")) == 5

    def test_fig9_daily_rows(self, small_dataset):
        frame = figures.fig9_contention_aggregate(small_dataset)
        assert len(frame) == 30

    def test_fig14_both_resources(self, small_dataset):
        cdfs = figures.fig14_utilization_cdfs(small_dataset)
        assert set(cdfs) == {"cpu", "memory"}
        for values, fractions in cdfs.values():
            assert len(values) == small_dataset.vm_count
            assert fractions[-1] == pytest.approx(1.0)

    def test_fig15_flavor_table(self, small_dataset):
        frame = figures.fig15_lifetime_per_flavor(small_dataset)
        assert len(frame) >= 5
        assert np.all(np.asarray(frame["vm_count"], dtype=float) >= 30)
