"""Shared fixtures.

The generated dataset is expensive (seconds), so one small instance is
shared session-wide; tests must not mutate it.
"""

from __future__ import annotations

import importlib.util
import random
import signal

import numpy as np
import pytest

# -- per-test timeout ceiling ----------------------------------------------------
#
# ``addopts`` passes ``--timeout=300`` so no single test can hang the
# suite.  CI installs pytest-timeout, which owns that option; on bare
# environments without the plugin this SIGALRM-based fallback registers
# the same option and enforces the same ceiling (POSIX only — where
# SIGALRM is missing the option is accepted and ignored).

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None

if not _HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser):
        parser.addoption(
            "--timeout",
            type=float,
            default=0,
            help="per-test ceiling in seconds, 0 to disable (SIGALRM "
            "fallback; install pytest-timeout for the full plugin)",
        )

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        limit = float(item.config.getoption("--timeout"))
        if limit <= 0 or not hasattr(signal, "SIGALRM"):
            yield
            return

        def _expired(signum, frame):
            pytest.fail(
                f"{item.nodeid} exceeded the {limit:g}s per-test ceiling",
                pytrace=False,
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, limit)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)

from repro.datagen import GeneratorConfig, generate_dataset
from repro.infrastructure.capacity import Capacity, OvercommitPolicy
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.hierarchy import BuildingBlock, ComputeNode
from repro.infrastructure.topology import (
    BuildingBlockSpec,
    DatacenterSpec,
    TopologySpec,
    build_region,
)


@pytest.fixture(autouse=True)
def _global_random_guard(request, monkeypatch):
    """Fail loudly when a test drains the global ``random`` stream unseeded.

    Simulation determinism is load-bearing for this repo (same seed ⇒
    byte-identical traces), so production code must only draw from private
    seeded generators.  A test that consumes ``random``'s *global* state
    without seeding it first is order-dependent: its outcome silently
    changes when another test runs before it.  This guard snapshots the
    global state, records whether ``random.seed`` was called, and fails
    any test that advanced the stream without seeding.  Opt out with
    ``@pytest.mark.uses_global_random`` for tests that deliberately
    exercise unseeded global randomness.
    """
    if request.node.get_closest_marker("uses_global_random"):
        yield
        return
    before = random.getstate()
    seeded = False
    real_seed = random.seed

    def recording_seed(*args, **kwargs):
        nonlocal seeded
        seeded = True
        return real_seed(*args, **kwargs)

    monkeypatch.setattr(random, "seed", recording_seed)
    yield
    after = random.getstate()
    # Restore regardless so one offender cannot poison later tests.
    random.setstate(before)
    if after != before and not seeded:
        pytest.fail(
            f"{request.node.nodeid} consumed the global `random` stream "
            "without seeding it — draw from a private seeded "
            "random.Random/numpy Generator instead, call random.seed(...) "
            "first, or mark the test @pytest.mark.uses_global_random"
        )


@pytest.fixture(scope="session")
def small_config() -> GeneratorConfig:
    return GeneratorConfig(
        scale=0.02,
        sampling_seconds=3600,
        vm_series_limit=25,
        seed=20240731,
    )


@pytest.fixture(scope="session")
def small_dataset(small_config):
    """A ~36-node, ~1,100-VM, 30-day dataset shared across tests."""
    return generate_dataset(small_config)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def catalog():
    return default_catalog()


def make_node(
    node_id: str = "n0", vcpus: float = 64, memory_gib: float = 512
) -> ComputeNode:
    return ComputeNode(
        node_id=node_id,
        physical=Capacity(
            vcpus=vcpus,
            memory_mb=memory_gib * 1024,
            disk_gb=4096,
            network_gbps=200,
        ),
    )


def make_bb(
    bb_id: str = "bb0",
    nodes: int = 4,
    vcpus: float = 64,
    memory_gib: float = 512,
    policy: str = "spread",
    cpu_ratio: float = 4.0,
) -> BuildingBlock:
    bb = BuildingBlock(
        bb_id=bb_id,
        overcommit=OvercommitPolicy(cpu_ratio=cpu_ratio),
        policy=policy,
    )
    for i in range(nodes):
        bb.add_node(make_node(f"{bb_id}-n{i}", vcpus, memory_gib))
    return bb


def build_tiny_region_spec() -> TopologySpec:
    """Two DCs, four BBs (two general, one HANA-XL, one HANA), 12 nodes."""
    general = BuildingBlockSpec(
        bb_id="dc1-gp-00",
        node_count=4,
        node_capacity=Capacity(
            vcpus=64, memory_mb=512 * 1024, disk_gb=4096, network_gbps=200
        ),
    )
    general2 = BuildingBlockSpec(
        bb_id="dc2-gp-00",
        node_count=3,
        node_capacity=Capacity(
            vcpus=64, memory_mb=512 * 1024, disk_gb=4096, network_gbps=200
        ),
    )
    hana_xl = BuildingBlockSpec(
        bb_id="dc1-hana-00",
        node_count=3,
        node_capacity=Capacity(
            vcpus=224, memory_mb=12288 * 1024, disk_gb=32768, network_gbps=200
        ),
        overcommit=OvercommitPolicy(cpu_ratio=2.0),
        aggregate_class="hana_xl",
        policy="pack",
    )
    hana_plain = BuildingBlockSpec(
        bb_id="dc1-hana-01",
        node_count=2,
        node_capacity=Capacity(
            vcpus=224, memory_mb=12288 * 1024, disk_gb=32768, network_gbps=200
        ),
        overcommit=OvercommitPolicy(cpu_ratio=2.0),
        aggregate_class="hana",
        policy="pack",
    )
    return TopologySpec(
        region_id="test-region",
        datacenters=(
            DatacenterSpec(
                dc_id="dc1",
                az_id="az1",
                building_blocks=(general, hana_xl, hana_plain),
            ),
            DatacenterSpec(dc_id="dc2", az_id="az2", building_blocks=(general2,)),
        ),
    )


@pytest.fixture
def tiny_region_spec() -> TopologySpec:
    return build_tiny_region_spec()


@pytest.fixture
def tiny_region(tiny_region_spec):
    return build_region(tiny_region_spec)
