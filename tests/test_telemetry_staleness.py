"""Gap-aware telemetry semantics: staleness markers, not interpolation."""

import math

import numpy as np
import pytest

from repro.telemetry.downsample import downsample
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import STALE, TimeSeries, is_stale


def _series_with_marker() -> TimeSeries:
    return TimeSeries([0.0, 10.0, 20.0, 30.0], [1.0, STALE, 3.0, 5.0])


class TestMarkers:
    def test_stale_constant_is_nan(self):
        assert math.isnan(STALE)
        assert is_stale(STALE)
        assert not is_stale(0.0)

    def test_stale_count(self):
        assert _series_with_marker().stale_count == 1
        assert TimeSeries([0.0], [1.0]).stale_count == 0

    def test_present_strips_markers(self):
        present = _series_with_marker().present()
        assert list(present.timestamps) == [0.0, 20.0, 30.0]
        assert list(present.values) == [1.0, 3.0, 5.0]


class TestQueries:
    def test_at_or_before_returns_none_on_marker(self):
        series = _series_with_marker()
        assert series.at_or_before(5.0) == 1.0
        # The sample at t=10 is a marker: the value there is unknown, and
        # falling back to t=0 would be silent interpolation.
        assert series.at_or_before(10.0) is None
        assert series.at_or_before(15.0) is None
        assert series.at_or_before(20.0) == 3.0

    def test_statistics_skip_markers(self):
        series = _series_with_marker()
        assert series.mean() == pytest.approx(3.0)
        assert series.max() == 5.0
        assert series.min() == 1.0
        assert series.percentile(50) == 3.0

    def test_statistics_raise_when_nothing_observed(self):
        all_stale = TimeSeries([0.0, 10.0], [STALE, STALE])
        for stat in (all_stale.mean, all_stale.max, all_stale.min):
            with pytest.raises(ValueError, match="no observed samples"):
                stat()

    def test_integral_drops_intervals_touching_markers(self):
        clean = TimeSeries([0.0, 10.0, 20.0], [2.0, 2.0, 2.0])
        assert clean.integral() == pytest.approx(40.0)
        gappy = TimeSeries([0.0, 10.0, 20.0], [2.0, STALE, 2.0])
        # Both intervals touch the marker: nothing may be counted.
        assert gappy.integral() == 0.0
        partial = TimeSeries([0.0, 10.0, 20.0, 30.0], [2.0, 2.0, STALE, 2.0])
        assert partial.integral() == pytest.approx(20.0)

    def test_resample_keeps_all_stale_windows_marked(self):
        series = TimeSeries(
            [0.0, 10.0, 60.0, 70.0], [1.0, 3.0, STALE, STALE]
        )
        resampled = series.resample(60.0)
        assert resampled.values[0] == pytest.approx(2.0)
        assert is_stale(resampled.values[1])
        counts = series.resample(60.0, agg="count")
        assert list(counts.values) == [2.0, 0.0]


class TestStore:
    def test_append_stale_writes_marker(self):
        store = MetricStore()
        store.append("m", {"node": "a"}, 0.0, 1.0)
        store.append_stale("m", {"node": "a"}, 10.0)
        series = store.query("m", {"node": "a"})
        assert len(series) == 2
        assert series.stale_count == 1
        assert series.at_or_before(10.0) is None

    def test_aggregate_across_skips_stale_series(self):
        store = MetricStore()
        store.append("m", {"node": "a"}, 10.0, 4.0)
        store.append_stale("m", {"node": "b"}, 10.0)
        out = store.aggregate_across("m", agg="mean")
        # Only the observed series contributes at t=10.
        assert out.at_or_before(10.0) == 4.0

    def test_aggregate_across_propagates_all_stale_timestamps(self):
        store = MetricStore()
        store.append_stale("m", {"node": "a"}, 10.0)
        store.append_stale("m", {"node": "b"}, 10.0)
        out = store.aggregate_across("m", agg="mean")
        assert len(out) == 1
        assert is_stale(out.values[0])


class TestDownsample:
    def test_stale_count_tallied_per_chunk(self):
        series = TimeSeries([0.0, 10.0, 20.0], [1.0, STALE, 3.0])
        (chunk,) = downsample(series, 60.0)
        assert chunk.count == 2
        assert chunk.stale_count == 1
        assert chunk.mean == pytest.approx(2.0)
        assert chunk.total == pytest.approx(4.0)

    def test_all_stale_window_keeps_nan_aggregates(self):
        series = TimeSeries([0.0, 10.0, 60.0], [STALE, STALE, 5.0])
        chunks = downsample(series, 60.0)
        assert chunks[0].count == 0
        assert chunks[0].stale_count == 2
        assert math.isnan(chunks[0].mean)
        assert math.isnan(chunks[0].minimum)
        assert math.isnan(chunks[0].maximum)
        assert chunks[0].total == 0.0
        assert chunks[1].count == 1 and chunks[1].stale_count == 0


class TestScrapeInjection:
    def test_total_gap_leaves_store_empty(self):
        """gap_probability=1 loses every scrape cycle entirely."""
        from repro.faults import FaultConfig
        from repro.faults.scenario import ScenarioConfig, run_fault_scenario

        result = run_fault_scenario(
            ScenarioConfig(
                building_blocks=1,
                nodes_per_bb=2,
                duration_days=0.05,
                seed=3,
                arrival_rate_per_hour=0.0,
                initial_vms=5,
                faults=FaultConfig(seed=3, scrape_gap_probability=1.0),
            )
        )
        assert result.store.sample_count() == 0
        assert result.fault_report.scrape_gaps > 0

    def test_stale_nodes_ingest_markers_not_values(self):
        from repro.faults import FaultConfig
        from repro.faults.scenario import ScenarioConfig, run_fault_scenario

        result = run_fault_scenario(
            ScenarioConfig(
                building_blocks=1,
                nodes_per_bb=2,
                duration_days=0.05,
                seed=3,
                arrival_rate_per_hour=0.0,
                initial_vms=5,
                faults=FaultConfig(seed=3, stale_node_probability=1.0),
            )
        )
        assert result.fault_report.stale_node_scrapes > 0
        # Every vROps host sample is a marker; timestamps are still present.
        metric = "vrops_hostsystem_cpu_core_utilization_percentage"
        stale_total = 0
        for _labels, series in result.store.select(metric):
            assert len(series) > 0
            stale_total += series.stale_count
            assert np.isnan(series.values).all()
        assert stale_total > 0
