"""Tests for the calibration-validation module."""

import numpy as np
import pytest

from repro.datagen.validation import CheckResult, ValidationReport, validate_dataset


def test_default_dataset_passes_all_checks(small_dataset):
    """The shipped configuration must satisfy every paper target."""
    report = validate_dataset(small_dataset)
    assert report.passed, report.render()


def test_report_covers_all_figures(small_dataset):
    report = validate_dataset(small_dataset)
    names = {c.name.split(".")[0] for c in report.checks}
    assert {"fig14a", "fig14b", "fig9", "fig5", "fig11", "fig13", "fig15",
            "table1", "table2"} <= names


def test_render_lists_every_check(small_dataset):
    report = validate_dataset(small_dataset)
    text = report.render()
    assert text.count("[PASS]") + text.count("[FAIL]") == len(report.checks)
    assert f"{len(report.checks)}/{len(report.checks)} calibration" in text


def test_failures_detected_on_corrupted_dataset(small_dataset):
    """Breaking the CPU ratios must flip the fig14a checks to FAIL."""
    corrupted = small_dataset
    original = corrupted.vms["cpu_avg_ratio"]
    try:
        # Everyone suddenly runs CPU-hot: overprovisioning disappears.
        corrupted.vms._columns["cpu_avg_ratio"] = np.full(len(original), 0.95)
        report = validate_dataset(corrupted)
        assert not report.passed
        failed_names = {c.name for c in report.failures}
        assert "fig14a.cpu_underutilized_share" in failed_names
    finally:
        corrupted.vms._columns["cpu_avg_ratio"] = original


def test_check_result_str():
    check = CheckResult("x.y", passed=True, measured=0.5, expectation="in [0,1]")
    assert "[PASS]" in str(check)
    assert "x.y" in str(check)


def test_report_properties():
    good = CheckResult("a", True, 1.0, "")
    bad = CheckResult("b", False, 2.0, "")
    report = ValidationReport(checks=(good, bad))
    assert not report.passed
    assert report.failures == [bad]
