"""Tests for the energy model."""

import numpy as np
import pytest

from repro.core.energy import PowerModel, fleet_energy, packing_energy_comparison
from repro.telemetry.timeseries import TimeSeries


class TestPowerModel:
    def test_power_interpolates_linearly(self):
        model = PowerModel(idle_watts=200, peak_watts=800)
        assert model.power_at(0.0) == 200
        assert model.power_at(1.0) == 800
        assert model.power_at(0.5) == 500

    def test_utilization_clipped(self):
        model = PowerModel(idle_watts=200, peak_watts=800)
        assert model.power_at(2.0) == 800
        assert model.power_at(-1.0) == 200

    def test_energy_of_constant_series(self):
        model = PowerModel(idle_watts=200, peak_watts=800)
        series = TimeSeries.regular(0, 3600, [0.5] * 25)  # 24 hours
        assert model.energy_kwh(series) == pytest.approx(500 * 24 / 1000)

    def test_sleep_energy(self):
        model = PowerModel(sleep_watts=10)
        series = TimeSeries.regular(0, 3600, [0.9] * 25)
        assert model.energy_kwh(series, asleep=True) == pytest.approx(10 * 24 / 1000)

    def test_short_series_zero(self):
        assert PowerModel().energy_kwh(TimeSeries.regular(0, 1, [0.5])) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(idle_watts=500, peak_watts=100)
        with pytest.raises(ValueError):
            PowerModel(idle_watts=-1)


class TestFleetEnergy:
    def test_report_totals_positive(self, small_dataset):
        report = fleet_energy(small_dataset)
        assert report.node_count == small_dataset.node_count
        assert report.total_kwh > 0
        assert 0 < report.idle_floor_kwh <= report.total_kwh

    def test_idle_floor_dominates_underutilized_fleet(self, small_dataset):
        """§5.1's underutilisation in energy terms: most energy is the
        idle floor — the efficiency argument for consolidation."""
        report = fleet_energy(small_dataset)
        assert report.idle_share > 0.5

    def test_consolidation_potential_exists(self, small_dataset):
        report = fleet_energy(small_dataset)
        assert report.consolidation_potential_kwh > 0
        assert report.consolidation_potential_kwh < report.total_kwh


class TestPackingComparison:
    def test_packing_saves_energy(self):
        """The same work on fewer, fuller nodes draws less power."""
        spread = np.full(10, 0.2)  # 10 nodes at 20%
        packed = np.full(4, 0.5)  # 4 nodes at 50% (same total work)
        spread_kwh, packed_kwh = packing_energy_comparison(spread, packed, hours=24)
        assert packed_kwh < spread_kwh

    def test_sleep_power_counted(self):
        spread = np.full(2, 0.1)
        packed = np.full(1, 0.2)
        model = PowerModel(idle_watts=100, peak_watts=200, sleep_watts=50)
        _, packed_kwh = packing_energy_comparison(spread, packed, 1.0, model)
        # One active node (100 + 100*0.2 = 120 W) + one sleeping (50 W).
        assert packed_kwh == pytest.approx((120 + 50) / 1000, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            packing_energy_comparison(np.ones(1), np.ones(2), hours=1)
        with pytest.raises(ValueError):
            packing_energy_comparison(np.ones(2), np.ones(1), hours=0)
