"""Tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationEngine


def test_events_run_in_time_order():
    engine = SimulationEngine()
    seen = []
    engine.on("e", lambda eng, ev: seen.append(ev.payload["tag"]))
    engine.schedule(30, "e", tag="c")
    engine.schedule(10, "e", tag="a")
    engine.schedule(20, "e", tag="b")
    engine.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order():
    engine = SimulationEngine()
    seen = []
    engine.on("e", lambda eng, ev: seen.append(ev.payload["tag"]))
    for tag in ("first", "second", "third"):
        engine.schedule(5.0, "e", tag=tag)
    engine.run()
    assert seen == ["first", "second", "third"]


def test_handler_can_schedule_followups():
    engine = SimulationEngine()
    seen = []

    def handler(eng, ev):
        seen.append(eng.now)
        if eng.now < 30:
            eng.schedule(eng.now + 10, "tick")

    engine.on("tick", handler)
    engine.schedule(10, "tick")
    engine.run()
    assert seen == [10, 20, 30]


def test_run_until_stops_at_boundary():
    engine = SimulationEngine()
    seen = []
    engine.on("e", lambda eng, ev: seen.append(eng.now))
    for t in (10, 20, 30):
        engine.schedule(t, "e")
    processed = engine.run_until(20)
    assert processed == 2
    assert engine.now == 20
    assert engine.pending == 1


def test_run_until_advances_clock_even_without_events():
    engine = SimulationEngine()
    engine.run_until(500)
    assert engine.now == 500


def test_schedule_in_past_rejected():
    engine = SimulationEngine(start_time=100)
    with pytest.raises(ValueError, match="before current time"):
        engine.schedule(50, "e")


def test_schedule_at_current_time_allowed():
    """time == now is legal: the event runs this instant, after the queue head."""
    engine = SimulationEngine(start_time=100)
    seen = []
    engine.on("e", lambda eng, ev: seen.append(eng.now))
    engine.schedule(100, "e")
    engine.run()
    assert seen == [100]


def test_handler_may_schedule_at_now():
    engine = SimulationEngine()
    seen = []

    def handler(eng, ev):
        seen.append(ev.payload["tag"])
        if ev.payload["tag"] == "a":
            eng.schedule(eng.now, "e", tag="b")

    engine.on("e", handler)
    engine.schedule(10, "e", tag="a")
    engine.run()
    assert seen == ["a", "b"]


def test_schedule_nan_time_rejected():
    engine = SimulationEngine()
    with pytest.raises(ValueError, match="NaN"):
        engine.schedule(float("nan"), "e")


def test_missing_handler_raises():
    engine = SimulationEngine()
    engine.schedule(1, "unknown")
    with pytest.raises(KeyError, match="no handler"):
        engine.run()


def test_duplicate_handler_rejected():
    engine = SimulationEngine()
    engine.on("e", lambda eng, ev: None)
    with pytest.raises(ValueError, match="already registered"):
        engine.on("e", lambda eng, ev: None)


def test_step_returns_none_when_empty():
    assert SimulationEngine().step() is None


def test_peek_time():
    engine = SimulationEngine()
    assert engine.peek_time() is None
    engine.on("e", lambda eng, ev: None)
    engine.schedule(42, "e")
    assert engine.peek_time() == 42


def test_processed_counter():
    engine = SimulationEngine()
    engine.on("e", lambda eng, ev: None)
    for t in range(5):
        engine.schedule(t, "e")
    engine.run()
    assert engine.processed == 5


def test_iter_pending_filters_by_kind():
    engine = SimulationEngine()
    for kind in ("a", "b", "c"):
        engine.on(kind, lambda eng, ev: None)
    for kind in ("a", "b", "a", "c"):
        engine.schedule(1.0, kind)
    assert {e.kind for e in engine.iter_pending()} == {"a", "b", "c"}
    assert len(engine.iter_pending("a")) == 2
    assert len(engine.iter_pending("b")) == 1
    assert engine.iter_pending("missing") == []


def test_iter_pending_index_tracks_dispatch():
    """The per-kind index must shed events as they are processed, so a
    mid-run snapshot only shows genuinely queued events."""
    engine = SimulationEngine()
    engine.on("tick", lambda eng, ev: None)
    engine.on("other", lambda eng, ev: None)
    for t in range(4):
        engine.schedule(float(t), "tick")
    engine.schedule(10.0, "other")

    engine.run_until(1.0)
    remaining = engine.iter_pending("tick")
    assert sorted(e.time for e in remaining) == [2.0, 3.0]
    assert len(engine.iter_pending("other")) == 1

    engine.run()
    assert engine.iter_pending("tick") == []
    assert engine.iter_pending("other") == []
    assert engine.iter_pending() == []


def test_iter_pending_sees_events_scheduled_by_handlers():
    engine = SimulationEngine()
    seen: list[int] = []

    def tick(eng, ev):
        seen.append(len(eng.iter_pending("tick")))
        if ev.time < 2.0:
            eng.schedule(ev.time + 1.0, "tick")

    engine.on("tick", tick)
    engine.schedule(0.0, "tick")
    engine.run()
    # Inside each handler the popped event is gone; the follow-up appears
    # as soon as the handler schedules it.
    assert seen == [0, 0, 0]


def test_iter_pending_matches_full_queue_snapshot():
    engine = SimulationEngine()
    for kind in ("x", "y"):
        engine.on(kind, lambda eng, ev: None)
    for t in range(6):
        engine.schedule(float(t), "x" if t % 2 else "y")
    engine.run_until(2.0)
    by_kind = {e.seq for e in engine.iter_pending("x")} | {
        e.seq for e in engine.iter_pending("y")
    }
    assert by_kind == {e.seq for e in engine.iter_pending()}
