"""Exactness of the compiled scalar waveform path (repro.workloads.waveform).

The columnar scrape fast-path replaces per-VM ``VMDemand.evaluate`` (numpy
array in, Sample list out) with :class:`CompiledDemand` scalar closures.
The contract is *bitwise* equality, not approximate: the simulation's
telemetry fingerprint must not move by a single byte when the fast path is
enabled.  These properties pin that contract directly, including across
recompilation (resize) boundaries.

Both paths consume the shared pattern RNG in the same draw order, so the
comparison builds two demand objects from identically seeded generators and
walks them through the same tick sequence in lockstep.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.infrastructure.flavors import default_catalog
from repro.workloads import patterns
from repro.workloads.demand import DemandModel
from repro.workloads.profiles import PROFILES
from repro.workloads.waveform import (
    TABLE_CAP,
    CompiledDemand,
    compile_demand,
    compile_pattern,
)

_FLAVOR_NAMES = ("g_c2_m8", "g_c8_m32", "g_c16_m128")
_PROFILE_NAMES = tuple(PROFILES)


def _legacy_tuple(demand, t):
    """One tick through the original numpy path, as the scalar 5-tuple."""
    snap = demand.evaluate(np.asarray([t], dtype=float))
    return (
        float(snap.cpu_cores[0]),
        float(snap.memory_mb[0]),
        float(snap.network_tx_kbps[0]),
        float(snap.network_rx_kbps[0]),
        float(snap.disk_gb[0]),
    )


def _demand_pair(seed, flavor_name, profile_name):
    """Two identical demand objects on independent, identically-seeded RNGs."""
    flavor = default_catalog().get(flavor_name)
    profile = PROFILES[profile_name]
    out = []
    for _ in range(2):
        model = DemandModel(np.random.default_rng(seed))
        out.append(model.demand_for(flavor, profile))
    return out


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    flavor_name=st.sampled_from(_FLAVOR_NAMES),
    profile_name=st.sampled_from(_PROFILE_NAMES),
    start=st.floats(min_value=0.0, max_value=30 * 86_400.0),
    interval=st.floats(min_value=1.0, max_value=7200.0),
    ticks=st.integers(min_value=1, max_value=48),
)
def test_compiled_demand_bitwise_equal_at_every_tick(
    seed, flavor_name, profile_name, start, interval, ticks
):
    reference, subject = _demand_pair(seed, flavor_name, profile_name)
    compiled = compile_demand(subject)
    for i in range(ticks):
        t = start + i * interval
        expected = _legacy_tuple(reference, t)
        got = compiled.evaluate(t)
        # Plain == is bitwise for floats except NaN (never produced here);
        # any rounding difference between the numpy and scalar paths is a
        # real fingerprint break, not test noise.
        assert got == expected, (t, got, expected)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    profile_name=st.sampled_from(_PROFILE_NAMES),
    switch_at=st.integers(min_value=1, max_value=20),
)
def test_compiled_demand_exact_across_recompile_boundary(
    seed, profile_name, switch_at
):
    """Resize invalidation: a fresh demand object must be recompiled and
    stay exact — the registry pattern is identity-keyed, so the swap point
    is where stale caches would first diverge."""
    ref_old, sub_old = _demand_pair(seed, "g_c2_m8", profile_name)
    ref_new, sub_new = _demand_pair(seed + 1, "g_c16_m128", profile_name)

    compiled = {"vm": compile_demand(sub_old)}
    reference, subject = ref_old, sub_old
    for i in range(switch_at + 10):
        if i == switch_at:
            reference, subject = ref_new, sub_new
        t = 1800.0 * i
        cd = compiled["vm"]
        if cd.demand is not subject:
            cd = compiled["vm"] = compile_demand(subject)
        assert cd.evaluate(t) == _legacy_tuple(reference, t)


def test_compile_demand_returns_compiled_type():
    _, subject = _demand_pair(3, "g_c8_m32", "general")
    compiled = compile_demand(subject)
    assert isinstance(compiled, CompiledDemand)
    assert compiled.demand is subject


def test_diurnal_memo_stays_exact_past_table_cap():
    """The day-phase memo clears at TABLE_CAP entries; exactness must
    survive the flush (distinct phases > cap forces at least one)."""
    pattern = patterns.diurnal(base=0.2, peak=0.9)
    fn = compile_pattern(pattern)
    # Prime-ish stride so phases don't repeat until well past the cap.
    times = [i * 7919.0 for i in range(TABLE_CAP + 50)]
    for t in times:
        expected = float(pattern(np.asarray([t], dtype=float))[0])
        assert fn(t) == expected


def test_weekly_exact_on_day_boundaries():
    """Weekly is computed scalar-side; day-boundary ticks are where a
    floor-division discrepancy would bite."""
    pattern = patterns.weekly(weekday_scale=1.0, weekend_scale=0.3)
    fn = compile_pattern(pattern)
    for day in range(0, 21):
        for nudge in (-0.001, 0.0, 0.001):
            t = day * 86_400.0 + nudge
            if t < 0:
                continue
            expected = float(pattern(np.asarray([t], dtype=float))[0])
            assert fn(t) == expected
            assert math.isfinite(fn(t))


def test_unknown_pattern_falls_back_to_closure():
    def custom(ts):
        return np.full(len(np.asarray(ts)), 0.5)

    fn = compile_pattern(custom)
    assert fn(123.0) == 0.5


@pytest.mark.parametrize("profile_name", _PROFILE_NAMES)
def test_every_builtin_profile_compiles_exactly(profile_name):
    """No profile's pattern mix silently hits the slow fallback wrong."""
    reference, subject = _demand_pair(42, "g_c8_m32", profile_name)
    compiled = compile_demand(subject)
    for i in range(96):
        t = 900.0 * i
        assert compiled.evaluate(t) == _legacy_tuple(reference, t)
