"""Tests for the PromQL-flavoured query language."""

import numpy as np
import pytest

from repro.telemetry.query import QueryError, evaluate, instant, query, query_range
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries


@pytest.fixture
def store() -> MetricStore:
    s = MetricStore()
    s.append_series(
        "cpu_pct", {"host": "a", "dc": "one"},
        TimeSeries.regular(0, 60, [10, 20, 30, 40]),
    )
    s.append_series(
        "cpu_pct", {"host": "b", "dc": "one"},
        TimeSeries.regular(0, 60, [50, 60, 70, 80]),
    )
    s.append_series(
        "cpu_pct", {"host": "c", "dc": "two"},
        TimeSeries.regular(0, 60, [1, 1, 1, 1]),
    )
    return s


class TestSelectors:
    def test_bare_metric_returns_all_series(self, store):
        result = evaluate(store, "cpu_pct")
        assert len(result) == 3
        assert not result.aggregated

    def test_label_matcher(self, store):
        result = evaluate(store, 'cpu_pct{host="a"}')
        assert len(result) == 1
        assert result.series[0][0]["host"] == "a"

    def test_multi_label_matcher(self, store):
        result = evaluate(store, 'cpu_pct{dc="one", host="b"}')
        assert result.single().values[0] == 50

    def test_no_match_is_empty(self, store):
        assert len(evaluate(store, 'cpu_pct{host="zzz"}')) == 0

    def test_unknown_metric_is_empty(self, store):
        assert len(evaluate(store, "nope")) == 0


class TestAggregation:
    def test_mean_across_series(self, store):
        result = evaluate(store, "mean(cpu_pct)")
        assert result.aggregated
        series = result.single()
        assert series.values[0] == pytest.approx((10 + 50 + 1) / 3)

    def test_max_with_matcher(self, store):
        series = evaluate(store, 'max(cpu_pct{dc="one"})').single()
        assert list(series.values) == [50, 60, 70, 80]

    def test_count(self, store):
        series = evaluate(store, "count(cpu_pct)").single()
        assert np.all(series.values == 3)


class TestRange:
    def test_range_restricts_samples(self, store):
        series = evaluate(store, 'cpu_pct{host="a"}[60, 180]').single()
        assert list(series.timestamps) == [60, 120]

    def test_range_on_aggregate(self, store):
        series = evaluate(store, "sum(cpu_pct)[0, 61]").single()
        assert len(series) == 2

    def test_bad_range_rejected(self, store):
        with pytest.raises(QueryError, match="range end"):
            evaluate(store, "cpu_pct[100, 50]")


class TestAggOverTime:
    def test_resamples_each_series(self, store):
        result = evaluate(store, 'agg_over_time(cpu_pct{host="a"}, 120, mean)')
        series = result.single()
        assert list(series.values) == [15.0, 35.0]

    def test_unknown_inner_agg(self, store):
        with pytest.raises(QueryError, match="unknown aggregation"):
            evaluate(store, "agg_over_time(cpu_pct, 120, median99)")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "mean(",
            "mean()",
            "cpu_pct{host=}",
            'cpu_pct{host="a"',
            "cpu_pct extra",
            "cpu_pct[100]",
            "{}",
            "42",
        ],
    )
    def test_malformed_queries_raise(self, store, bad):
        with pytest.raises(QueryError):
            evaluate(store, bad)

    def test_single_requires_one_series(self, store):
        result = evaluate(store, "cpu_pct")
        with pytest.raises(QueryError, match="exactly one"):
            result.single()


class TestProgrammaticFrontEnd:
    """The module-level functions are the supported store-read surface."""

    def test_query_returns_exact_series(self, store):
        series = query(store, "cpu_pct", {"host": "a", "dc": "one"})
        assert list(series.values) == [10, 20, 30, 40]

    def test_query_range_half_open_window(self, store):
        series = query_range(store, "cpu_pct", {"host": "a", "dc": "one"}, 60, 180)
        assert list(series.timestamps) == [60, 120]

    def test_query_range_matches_deprecated_store_shim(self, store):
        via_front_end = query_range(
            store, "cpu_pct", {"host": "b", "dc": "one"}, 0, 120
        )
        with pytest.warns(DeprecationWarning):
            via_shim = store.query_range("cpu_pct", {"host": "b", "dc": "one"}, 0, 120)
        assert list(via_front_end.timestamps) == list(via_shim.timestamps)
        assert list(via_front_end.values) == list(via_shim.values)

    def test_instant_reads_latest_at_or_before(self, store):
        assert instant(store, "cpu_pct", {"host": "a", "dc": "one"}, 70.0) == 20
        assert instant(store, "cpu_pct", {"host": "a", "dc": "one"}, -1.0) is None


def test_real_metric_names_work(small_dataset):
    """The Table 4 names (with underscores) parse and evaluate."""
    result = evaluate(
        small_dataset.store, "max(vrops_hostsystem_cpu_contention_percentage)"
    )
    assert result.single().values.max() > 10.0
