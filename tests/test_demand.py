"""Tests for per-VM demand synthesis."""

import numpy as np
import pytest

from repro.infrastructure.flavors import default_catalog
from repro.workloads.demand import DemandModel
from repro.workloads.profiles import PROFILES


@pytest.fixture
def model(rng):
    return DemandModel(rng)


@pytest.fixture
def flavor():
    return default_catalog().get("g_c8_m32")


def test_demand_respects_flavor_limits(model, flavor):
    demand = model.demand_for(flavor)
    grid = np.arange(0, 3 * 86_400, 900.0)
    snap = demand.evaluate(grid)
    assert snap.cpu_cores.max() <= flavor.vcpus + 1e-9
    assert snap.memory_mb.max() <= flavor.ram_mb + 1e-9
    assert snap.disk_gb.max() <= flavor.disk_gb + 1e-9


def test_ratios_are_demand_over_requested(model, flavor):
    demand = model.demand_for(flavor)
    grid = np.arange(0, 86_400, 900.0)
    snap = demand.evaluate(grid)
    np.testing.assert_allclose(snap.cpu_cores, snap.cpu_ratio * flavor.vcpus)
    np.testing.assert_allclose(snap.memory_mb, snap.memory_ratio * flavor.ram_mb)


def test_network_scales_with_cpu_activity(model, flavor):
    demand = model.demand_for(flavor, PROFILES["k8s_infra"])
    grid = np.arange(0, 86_400, 900.0)
    snap = demand.evaluate(grid)
    # TX is proportional to the CPU ratio; zero CPU means zero traffic.
    assert np.all((snap.cpu_ratio > 0) | (snap.network_tx_kbps == 0))
    assert np.all(snap.network_rx_kbps == pytest.approx(snap.network_tx_kbps * 0.8))


def test_explicit_profile_honoured(model, flavor):
    demand = model.demand_for(flavor, PROFILES["cicd"])
    assert demand.profile.name == "cicd"


def test_deterministic_given_seed(flavor):
    grid = np.arange(0, 86_400, 900.0)
    snaps = []
    for _ in range(2):
        model = DemandModel(np.random.default_rng(123))
        snap = model.demand_for(flavor, PROFILES["general"]).evaluate(grid)
        snaps.append(snap)
    np.testing.assert_array_equal(snaps[0].cpu_cores, snaps[1].cpu_cores)
    np.testing.assert_array_equal(snaps[0].memory_mb, snaps[1].memory_mb)


def test_disk_constant_over_time(model, flavor):
    demand = model.demand_for(flavor)
    snap = demand.evaluate(np.arange(0, 86_400, 3600.0))
    assert len(np.unique(snap.disk_gb)) == 1
