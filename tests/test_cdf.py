"""Tests for CDF helpers (Fig 14)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.cdf import cdf_at, cdf_points, utilization_cdf


def test_cdf_points_basic():
    values, fractions = cdf_points([3.0, 1.0, 2.0])
    assert list(values) == [1.0, 2.0, 3.0]
    assert list(fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_cdf_points_empty():
    values, fractions = cdf_points([])
    assert len(values) == 0
    assert len(fractions) == 0


def test_cdf_at():
    assert cdf_at([1, 2, 3, 4], 2.5) == 0.5
    assert cdf_at([1, 2], 0) == 0.0
    assert cdf_at([1, 2], 5) == 1.0


def test_cdf_at_empty_raises():
    with pytest.raises(ValueError):
        cdf_at([], 1.0)


def test_utilization_cdf_cpu_shape(small_dataset):
    """Fig 14a: the CPU CDF rises steeply — >80% of mass below ratio 0.7."""
    values, fractions = utilization_cdf(small_dataset, "cpu")
    assert len(values) == small_dataset.vm_count
    below = fractions[np.searchsorted(values, 0.70)]
    assert below > 0.80


def test_utilization_cdf_memory_shape(small_dataset):
    """Fig 14b: memory mass is concentrated high — most VMs above 0.85."""
    values, _fractions = utilization_cdf(small_dataset, "memory")
    assert float(np.mean(values > 0.85)) > 0.40


def test_utilization_cdf_unknown_resource(small_dataset):
    with pytest.raises(ValueError):
        utilization_cdf(small_dataset, "disk")


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_property_cdf_monotone_and_bounded(values):
    sorted_values, fractions = cdf_points(values)
    assert np.all(np.diff(sorted_values) >= 0)
    assert np.all(np.diff(fractions) > 0)
    assert fractions[-1] == pytest.approx(1.0)
    assert fractions[0] > 0
