"""Tests for capacity vectors and overcommit policies."""

import pytest
from hypothesis import given, strategies as st

from repro.infrastructure.capacity import (
    Capacity,
    GENERAL_OVERCOMMIT,
    HANA_OVERCOMMIT,
    OvercommitPolicy,
)


class TestCapacity:
    def test_add(self):
        total = Capacity(1, 2, 3, 4) + Capacity(10, 20, 30, 40)
        assert total == Capacity(11, 22, 33, 44)

    def test_sub_floors_at_zero(self):
        out = Capacity(1, 100, 0, 0) - Capacity(5, 40, 0, 0)
        assert out.vcpus == 0
        assert out.memory_mb == 60

    def test_scaled(self):
        assert Capacity(2, 4, 6, 8).scaled(0.5) == Capacity(1, 2, 3, 4)

    def test_negative_component_raises(self):
        with pytest.raises(ValueError):
            Capacity(vcpus=-1)

    def test_fits_within(self):
        small = Capacity(1, 1024, 10, 0)
        big = Capacity(4, 4096, 100, 10)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_fits_within_equal_is_true(self):
        c = Capacity(2, 2, 2, 2)
        assert c.fits_within(c)

    def test_dominant_share_ignores_zero_totals(self):
        item = Capacity(vcpus=2, memory_mb=512)
        total = Capacity(vcpus=4, memory_mb=4096)
        assert item.dominant_share(total) == pytest.approx(0.5)

    def test_dominant_share_empty_total(self):
        assert Capacity().dominant_share(Capacity()) == 0.0


class TestOvercommitPolicy:
    def test_allocatable_scales_cpu(self):
        policy = OvercommitPolicy(cpu_ratio=4.0, memory_ratio=1.0)
        out = policy.allocatable(Capacity(vcpus=10, memory_mb=100))
        assert out.vcpus == 40
        assert out.memory_mb == 100

    def test_network_not_overcommitted(self):
        policy = OvercommitPolicy(cpu_ratio=4.0)
        out = policy.allocatable(Capacity(network_gbps=200))
        assert out.network_gbps == 200

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            OvercommitPolicy(cpu_ratio=0)

    def test_hana_policy_never_overcommits_memory(self):
        assert HANA_OVERCOMMIT.memory_ratio == 1.0
        assert HANA_OVERCOMMIT.cpu_ratio < GENERAL_OVERCOMMIT.cpu_ratio


_cap = st.builds(
    Capacity,
    vcpus=st.floats(min_value=0, max_value=1e4),
    memory_mb=st.floats(min_value=0, max_value=1e8),
    disk_gb=st.floats(min_value=0, max_value=1e6),
    network_gbps=st.floats(min_value=0, max_value=1e3),
)


@given(a=_cap, b=_cap)
def test_property_addition_commutes(a, b):
    assert a + b == b + a


@given(a=_cap, b=_cap)
def test_property_sum_fits_both(a, b):
    total = a + b
    assert a.fits_within(total)
    assert b.fits_within(total)


@given(a=_cap)
def test_property_sub_self_is_zero(a):
    assert a - a == Capacity()


@given(a=_cap, b=_cap)
def test_property_dominant_share_bounds(a, b):
    share = a.dominant_share(b)
    assert share >= 0.0
    if a.fits_within(b):
        assert share <= 1.0 + 1e-9
