"""Tests for the temporal-structure analysis."""

import numpy as np
import pytest

from repro.core.temporal import (
    classify_node_series,
    diurnal_strength,
    static_node_share,
    temporal_summary,
)
from repro.telemetry.timeseries import TimeSeries


def _series(values, step=3600.0):
    return TimeSeries.regular(0, step, values)


class TestClassification:
    def test_flat_series_is_static(self):
        series = _series(np.full(30 * 24, 40.0))
        profile = classify_node_series("n", series)
        assert profile.classification == "static"
        assert profile.trend_pp_per_day == pytest.approx(0.0, abs=1e-9)

    def test_drifting_series_is_trending(self):
        """§5.1: some nodes show a consistent increase in CPU demand."""
        hours = np.arange(30 * 24)
        series = _series(20 + hours / 24.0 * 1.5)  # +1.5 pp/day
        profile = classify_node_series("n", series)
        assert profile.classification == "trending"
        assert profile.trend_pp_per_day == pytest.approx(1.5, abs=0.1)

    def test_noisy_series_is_fluctuating(self):
        rng = np.random.default_rng(0)
        days = np.repeat(rng.uniform(10, 90, 30), 24)
        profile = classify_node_series("n", _series(days))
        assert profile.classification == "fluctuating"

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            classify_node_series("n", _series([1.0]))


class TestDatasetLevel:
    def test_most_nodes_static(self, small_dataset):
        """§7: 'resource utilization over most compute nodes is relatively
        static within the considered time frame'."""
        assert static_node_share(small_dataset) > 0.5

    def test_summary_covers_all_nodes(self, small_dataset):
        summary = temporal_summary(small_dataset)
        total = int(np.sum(np.asarray(summary["node_count"], dtype=int)))
        assert total == small_dataset.node_count
        assert float(np.sum(np.asarray(summary["share"], dtype=float))) == pytest.approx(1.0)

    def test_all_three_classes_reported(self, small_dataset):
        summary = temporal_summary(small_dataset)
        assert [str(c) for c in summary["classification"]] == [
            "static", "trending", "fluctuating",
        ]


class TestDiurnalStrength:
    def test_pure_diurnal_signal_near_one(self):
        hours = np.arange(0, 7 * 86_400, 1800.0)
        values = 50 + 30 * np.sin(2 * np.pi * hours / 86_400)
        assert diurnal_strength(TimeSeries(hours, values)) > 0.95

    def test_noise_near_zero(self):
        rng = np.random.default_rng(1)
        hours = np.arange(0, 7 * 86_400, 1800.0)
        series = TimeSeries(hours, rng.uniform(0, 100, len(hours)))
        assert diurnal_strength(series) < 0.2

    def test_constant_is_zero(self):
        hours = np.arange(0, 3 * 86_400, 1800.0)
        assert diurnal_strength(TimeSeries(hours, np.full(len(hours), 5.0))) == 0.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            diurnal_strength(_series(np.ones(10)))
