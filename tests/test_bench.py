"""Tests for the bench harness (fast: tiny workloads, no long simulation)."""

import json

import pytest

from repro.bench import (
    CHECK_BOUNDS,
    PRE_PR_BASELINE,
    REQUIRED_KEYS,
    BenchConfig,
    _request_stream,
    bench_ingest,
    bench_schedule,
    check_results,
    run_bench,
    write_bench_json,
)


@pytest.fixture(scope="module")
def tiny_config() -> BenchConfig:
    """Small enough to run in seconds; sim stage disabled."""
    return BenchConfig(
        scale=0.02, requests=60, ingest_cycles=4, rounds=1, run_sim=False,
        sweep_duration_days=0.02, sweep_initial_vms=6, sweep_workers=2,
    )


@pytest.fixture(scope="module")
def payload(tiny_config):
    return run_bench(tiny_config)


class TestConfig:
    def test_smoke_keeps_full_ingest_cycles(self):
        assert BenchConfig.smoke().ingest_cycles == BenchConfig().ingest_cycles

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BenchConfig().requests = 1

    def test_request_stream_is_seed_deterministic(self):
        a = _request_stream(30, seed=5)
        b = _request_stream(30, seed=5)
        assert [(s.vm_id, s.flavor.name) for s in a] == [
            (s.vm_id, s.flavor.name) for s in b
        ]
        c = _request_stream(30, seed=6)
        assert [s.flavor.name for s in a] != [s.flavor.name for s in c]


class TestStages:
    def test_schedule_stage_paths_agree(self, tiny_config):
        out = bench_schedule(tiny_config)
        assert out["placements_identical"]
        assert out["schedule_requests"] == tiny_config.requests
        assert out["schedule_requests_per_s"] > 0
        assert out["schedule_stats"]["requests"] == tiny_config.requests

    def test_ingest_stage_counts_agree(self, tiny_config):
        out = bench_ingest(tiny_config)
        assert out["ingest_samples"] > 0
        assert out["telemetry_ingest_samples_per_s"] > 0
        assert out["ingest_block_speedup_vs_per_sample"] > 0


class TestPayload:
    def test_required_keys_present(self, payload):
        for key in REQUIRED_KEYS:
            assert key in payload["results"], key
        assert payload["bench"] == "scale"
        assert payload["baseline_pre_pr"] == PRE_PR_BASELINE
        assert payload["config"]["requests"] == 60

    def test_baseline_speedups_derived(self, payload):
        results = payload["results"]
        assert results["schedule_requests_speedup_vs_baseline"] == pytest.approx(
            results["schedule_requests_per_s"]
            / PRE_PR_BASELINE["schedule_requests_per_s"]
        )
        assert "telemetry_ingest_samples_speedup_vs_baseline" in results

    def test_sim_stage_skippable(self, payload):
        assert "sim_wall_s" not in payload["results"]

    def test_write_round_trips(self, payload, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        write_bench_json(payload, str(path))
        assert json.loads(path.read_text()) == payload


class TestCheckResults:
    def test_clean_payload_may_fail_only_on_ratio_bounds(self, payload):
        # Tiny workloads can miss the perf ratios (fixed costs dominate);
        # structural checks must still pass.
        problems = check_results(payload)
        for problem in problems:
            assert "below required" in problem

    def test_missing_key_reported(self):
        problems = check_results({"results": {"placements_identical": True}})
        assert any("missing or non-finite" in p for p in problems)

    def test_divergent_placements_reported(self):
        results = {key: 1.0 for key in REQUIRED_KEYS}
        results.update({key: minimum for key, minimum in CHECK_BOUNDS})
        results["placements_identical"] = False
        problems = check_results({"results": results})
        assert problems == ["indexed and legacy scheduling paths placed differently"]

    def test_ratio_bound_enforced(self):
        results = {key: 1.0 for key in REQUIRED_KEYS}
        results["placements_identical"] = True
        results["schedule_speedup_vs_legacy"] = 1.2
        results["ingest_block_speedup_vs_per_sample"] = 99.0
        problems = check_results({"results": results})
        assert len(problems) == 1
        assert "schedule_speedup_vs_legacy" in problems[0]


class TestScrapePathGates:
    @staticmethod
    def _base_results() -> dict:
        results = {key: 1.0 for key in REQUIRED_KEYS}
        results["placements_identical"] = True
        results.update({key: minimum for key, minimum in CHECK_BOUNDS})
        return results

    def test_sim_bounds_skipped_when_sim_not_run(self):
        results = self._base_results()
        results["sim_scrape_speedup_vs_legacy"] = 0.1  # would fail if enforced
        notes: list[str] = []
        problems = check_results({"results": results}, notes=notes)
        assert problems == []
        assert any("sim_scrape_speedup_vs_legacy" in n for n in notes)

    def test_sim_speedup_bound_enforced_when_sim_ran(self):
        results = self._base_results()
        results["sim_wall_s"] = 10.0
        results["sim_paths_identical"] = True
        results["sim_scrape_speedup_vs_legacy"] = 1.5
        problems = check_results({"results": results})
        assert len(problems) == 1
        assert "sim_scrape_speedup_vs_legacy" in problems[0]
        assert "below required" in problems[0]

    def test_scrape_path_divergence_reported(self):
        results = self._base_results()
        results["sim_wall_s"] = 10.0
        results["sim_paths_identical"] = False
        problems = check_results({"results": results})
        assert problems == ["columnar and legacy scrape paths diverged"]

    def test_sweep_ratio_assert_skipped_on_one_cpu(self):
        results = self._base_results()
        results["sweep_scenarios_per_hour_1w"] = 100.0
        results["sweep_scenarios_per_hour_nw"] = 50.0  # slower with workers
        results["sweep_cpu_count"] = 1
        notes: list[str] = []
        problems = check_results({"results": results}, notes=notes)
        assert problems == []
        assert any("sweep" in n and "skipped" in n for n in notes)

    def test_sweep_ratio_assert_enforced_on_multicore(self):
        results = self._base_results()
        results["sweep_scenarios_per_hour_1w"] = 100.0
        results["sweep_scenarios_per_hour_nw"] = 50.0
        results["sweep_cpu_count"] = 4
        problems = check_results({"results": results})
        assert len(problems) == 1
        assert "below required" in problems[0]
        assert "sweep_scenarios_per_hour_nw" in problems[0]

    def test_notes_optional(self):
        # Callers that don't pass `notes` must not crash on the skip paths.
        results = self._base_results()
        results["sweep_scenarios_per_hour_1w"] = 100.0
        results["sweep_scenarios_per_hour_nw"] = 50.0
        results["sweep_cpu_count"] = 1
        assert check_results({"results": results}) == []


class TestSweepStage:
    def test_sweep_results_in_payload(self, payload):
        results = payload["results"]
        assert results["sweep_cells"] == 8
        assert results["sweep_workers"] == 2
        assert results["sweep_reports_identical"] is True
        assert results["sweep_failed_shards"] == 0
        assert results["sweep_scenarios_per_hour_1w"] > 0
        assert results["sweep_scenarios_per_hour_nw"] > 0
        assert results["sweep_cpu_count"] >= 1

    def test_sim_30day_alias_flagged_deprecated_in_schema(self, payload):
        note = payload["schema"]["deprecated"]["results.sim_30day_wall_s"]
        assert "sim_wall_s" in note

    def test_sweep_divergence_reported(self):
        results = {key: 1.0 for key in REQUIRED_KEYS}
        results["placements_identical"] = True
        results.update({key: minimum for key, minimum in CHECK_BOUNDS})
        results["sweep_reports_identical"] = False
        problems = check_results({"results": results})
        assert problems == ["sweep reports differ between 1 and N workers"]

    def test_sweep_failed_shards_reported(self):
        results = {key: 1.0 for key in REQUIRED_KEYS}
        results["placements_identical"] = True
        results.update({key: minimum for key, minimum in CHECK_BOUNDS})
        results["sweep_failed_shards"] = 2
        problems = check_results({"results": results})
        assert problems == ["sweep bench had 2 failed shards"]


class TestJournalStage:
    def test_journal_throughput_keys(self):
        from repro.bench import BenchConfig, bench_journal

        results = bench_journal(
            BenchConfig(journal_records=50)
        )
        assert results["journal_records"] == 50
        assert results["journal_append_per_s_fsync"] > 0
        assert results["journal_append_per_s_flush"] > 0
        # Skipping the per-record fsync should never make appends slower;
        # the loose bound tolerates hosts where fsync is nearly free
        # (tmpfs, battery-backed caches) without flaking.
        assert results["journal_flush_speedup_vs_fsync"] > 0.5

    def test_fsync_throughput_is_a_required_artifact_key(self):
        assert "journal_append_per_s_fsync" in REQUIRED_KEYS
