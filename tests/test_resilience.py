"""Tests for the control-plane resilience layer (repro.resilience)."""

import json

import pytest

from repro.cli import main
from repro.faults import FaultConfig, FaultInjector, ScrapePartition, domain_ids, domain_members
from repro.infrastructure.topology import build_region
from repro.infrastructure.vm import VM, VMState
from repro.resilience import (
    AdmissionController,
    AdmissionRejected,
    HealthState,
    HostHealthService,
    InvariantChecker,
    InvariantViolationError,
    InventoryReconciler,
    ResilienceConfig,
    ResilienceReport,
)
from repro.scheduler.filters import QuarantineFilter
from repro.scheduler.hoststate import HostState
from repro.scheduler.index import HostStateIndex
from repro.scheduler.pipeline import NoValidHost
from repro.scheduler.placement import VCPU, PlacementService
from repro.scheduler.request import RequestSpec
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EVAC_RETRY, QUARANTINE_END
from tests.conftest import build_tiny_region_spec


@pytest.fixture
def region():
    return build_region(build_tiny_region_spec())


def make_health(region, **overrides):
    kwargs = {"quarantine_jitter_s": 0.0}
    kwargs.update(overrides)
    config = ResilienceConfig(**kwargs)
    report = ResilienceReport(seed=config.seed)
    return HostHealthService(region, config, report), report


def wire_quarantine_end(engine, health):
    engine.on(
        QUARANTINE_END,
        lambda eng, ev: health.on_quarantine_end(
            eng, ev.payload["node_id"], ev.payload["epoch"]
        ),
    )


def flap(engine, health, node, cycles, spacing=100.0):
    """Toggle ``node.failed`` once per heartbeat for ``cycles`` transitions."""
    t = engine.now
    for _ in range(cycles):
        t += spacing
        node.failed = not node.failed
        health.on_heartbeat(engine, t)
    return t


class TestResilienceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_interval_s": 0.0},
            {"flap_threshold": 1},
            {"quarantine_backoff": 0.5},
            {"bb_quarantine_fraction": 0.0},
            {"admission_burst": 0},
            {"request_deadline_s": 0.0},
            {"breaker_threshold": 0},
            {"reconcile_interval_s": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)


class TestHostHealthService:
    def test_stable_nodes_stay_healthy(self, region):
        health, report = make_health(region)
        engine = SimulationEngine()
        for t in range(1, 6):
            health.on_heartbeat(engine, t * 300.0)
        assert report.heartbeats == 5
        assert report.flaps_detected == 0
        assert all(not n.quarantined for n in region.iter_nodes())

    def test_flapping_node_is_quarantined(self, region):
        health, report = make_health(region, flap_threshold=4)
        engine = SimulationEngine()
        node = next(region.iter_nodes())
        node.failed = False
        flap(engine, health, node, cycles=4)
        assert report.flaps_detected == 1
        assert report.quarantines == 1
        assert node.quarantined
        assert health.state_of(node.node_id) is HealthState.QUARANTINED
        assert node.node_id in health.quarantined_hosts
        # The resident snapshot is frozen at quarantine time.
        assert health.quarantine_residents[node.node_id] == frozenset(node.vms)
        assert len(engine.iter_pending(QUARANTINE_END)) == 1

    def test_single_failure_is_not_flapping(self, region):
        health, report = make_health(region, flap_threshold=4)
        engine = SimulationEngine()
        node = next(region.iter_nodes())
        node.failed = True
        health.on_heartbeat(engine, 300.0)
        assert report.transitions_observed == 1
        assert report.flaps_detected == 0
        assert not node.quarantined

    def test_transitions_outside_window_are_pruned(self, region):
        health, report = make_health(region, flap_threshold=4, flap_window_s=250.0)
        engine = SimulationEngine()
        node = next(region.iter_nodes())
        # 100 s apart: only ~2 transitions ever fit in a 250 s window.
        flap(engine, health, node, cycles=8, spacing=100.0)
        assert report.flaps_detected == 0

    def test_readmission_and_probation_pass(self, region):
        health, report = make_health(region, flap_threshold=2, probation_s=600.0)
        engine = SimulationEngine()
        wire_quarantine_end(engine, health)
        node = next(region.iter_nodes())
        end = flap(engine, health, node, cycles=2)
        node.failed = False
        assert node.quarantined
        engine.run_until(end + 3 * 3600.0)
        assert not node.quarantined
        assert report.readmissions == 1
        assert health.state_of(node.node_id) is HealthState.PROBATION
        health.on_heartbeat(engine, engine.now + 700.0)
        assert health.state_of(node.node_id) is HealthState.HEALTHY
        assert report.probations_passed == 1

    def test_failure_during_probation_requarantines(self, region):
        health, report = make_health(region, flap_threshold=2, probation_s=3600.0)
        engine = SimulationEngine()
        wire_quarantine_end(engine, health)
        node = next(region.iter_nodes())
        end = flap(engine, health, node, cycles=2)
        node.failed = False
        engine.run_until(end + 3 * 3600.0)
        assert health.state_of(node.node_id) is HealthState.PROBATION
        node.failed = True
        health.on_heartbeat(engine, engine.now + 100.0)
        assert report.probation_failures == 1
        assert report.re_quarantines == 1
        assert node.quarantined

    def test_still_failed_at_expiry_stays_fenced(self, region):
        health, report = make_health(region, flap_threshold=2)
        engine = SimulationEngine()
        wire_quarantine_end(engine, health)
        node = next(region.iter_nodes())
        flap(engine, health, node, cycles=2)
        node.failed = True  # hard-down when the quarantine expires
        engine.run_until(engine.now + 3 * 3600.0)
        assert node.quarantined
        assert report.readmissions == 0
        # A re-probe is queued rather than the node being forgotten.
        assert len(engine.iter_pending(QUARANTINE_END)) == 1

    def test_bb_quarantine_at_fraction(self, region):
        health, report = make_health(
            region, flap_threshold=2, bb_quarantine_fraction=0.5
        )
        engine = SimulationEngine()
        # dc1-hana-01 has two nodes: fencing one crosses the 0.5 threshold.
        bb = region.find_building_block("dc1-hana-01")
        node = next(bb.iter_nodes())
        flap(engine, health, node, cycles=2)
        assert "dc1-hana-01" in health.quarantined_bbs
        assert report.bb_quarantines == 1
        assert "dc1-hana-01" in health.quarantined_hosts

    def test_stale_quarantine_end_is_ignored(self, region):
        health, report = make_health(region, flap_threshold=2)
        engine = SimulationEngine()
        node = next(region.iter_nodes())
        flap(engine, health, node, cycles=2)
        health.on_quarantine_end(engine, node.node_id, epoch=0)  # stale epoch
        assert node.quarantined


class TestQuarantineFilter:
    class _Health:
        def __init__(self, fenced):
            self.quarantined_hosts = frozenset(fenced)

    def _state(self, host_id):
        return HostState(host_id=host_id, az="az1")

    def test_rejects_fenced_hosts_only(self):
        flt = QuarantineFilter(self._Health({"bb-bad"}))
        spec = RequestSpec(vm_id="v", flavor=None)
        assert not flt.passes(self._state("bb-bad"), spec)
        assert flt.passes(self._state("bb-good"), spec)

    def test_irrelevant_when_nothing_fenced(self):
        flt = QuarantineFilter(self._Health(set()))
        assert not flt.relevant(RequestSpec(vm_id="v", flavor=None))


class _FakeScheduler:
    """Scheduler stub: scriptable outcomes, claim_observer attach point."""

    def __init__(self, outcomes=None):
        self.claim_observer = None
        self.outcomes = list(outcomes or [])
        self.specs = []

    def schedule(self, spec):
        self.specs.append(spec)
        outcome = self.outcomes.pop(0) if self.outcomes else "ok"
        if outcome == "novalid":
            raise NoValidHost("no host")
        return outcome


def make_admission(scheduler, **overrides):
    kwargs = {"admission_retry_jitter_s": 0.0}
    kwargs.update(overrides)
    config = ResilienceConfig(**kwargs)
    report = ResilienceReport(seed=config.seed)
    return AdmissionController(scheduler, config, report), report


class TestAdmissionController:
    def test_rate_zero_disables_rate_limiting(self):
        admission, report = make_admission(_FakeScheduler(), admission_rate_per_s=0.0)
        for i in range(50):
            admission.submit(RequestSpec(vm_id=f"v{i}", flavor=None), now=0.0)
        assert report.shed_rate_limit == 0
        assert report.requests_admitted == 50

    def test_token_bucket_sheds_and_refills(self):
        admission, report = make_admission(
            _FakeScheduler(), admission_rate_per_s=1.0, admission_burst=2
        )
        admission.submit(RequestSpec(vm_id="v0", flavor=None), now=0.0)
        admission.submit(RequestSpec(vm_id="v1", flavor=None), now=0.0)
        with pytest.raises(AdmissionRejected) as excinfo:
            admission.submit(RequestSpec(vm_id="v2", flavor=None), now=0.0)
        assert excinfo.value.reason == "rate_limit"
        assert excinfo.value.retry_after_s == pytest.approx(1.0)
        assert report.shed_rate_limit == 1
        # One second later one token has refilled.
        admission.submit(RequestSpec(vm_id="v2", flavor=None), now=1.0)
        assert report.requests_admitted == 3

    def test_global_breaker_opens_and_cools_down(self):
        scheduler = _FakeScheduler(outcomes=["novalid", "novalid"])
        admission, report = make_admission(
            scheduler, breaker_threshold=2, breaker_cooldown_s=600.0
        )
        for i in range(2):
            with pytest.raises(NoValidHost):
                admission.submit(RequestSpec(vm_id=f"v{i}", flavor=None), now=0.0)
        assert report.breaker_opens == 1
        with pytest.raises(AdmissionRejected) as excinfo:
            admission.submit(RequestSpec(vm_id="v2", flavor=None), now=1.0)
        assert excinfo.value.reason == "breaker_open"
        assert report.shed_breaker == 1
        # After the cooldown requests reach the scheduler again.
        admission.submit(RequestSpec(vm_id="v3", flavor=None), now=700.0)
        assert len(scheduler.specs) == 3  # the shed request never reached it

    def test_success_resets_breaker_streak(self):
        scheduler = _FakeScheduler(outcomes=["novalid", "ok", "novalid"])
        admission, report = make_admission(scheduler, breaker_threshold=2)
        with pytest.raises(NoValidHost):
            admission.submit(RequestSpec(vm_id="v0", flavor=None), now=0.0)
        admission.submit(RequestSpec(vm_id="v1", flavor=None), now=1.0)
        with pytest.raises(NoValidHost):
            admission.submit(RequestSpec(vm_id="v2", flavor=None), now=2.0)
        assert report.breaker_opens == 0

    def test_bb_breaker_excludes_block(self):
        scheduler = _FakeScheduler()
        admission, report = make_admission(
            scheduler, bb_breaker_threshold=2, bb_breaker_cooldown_s=900.0
        )
        assert scheduler.claim_observer is not None
        scheduler.claim_observer("bb-flaky", False)
        scheduler.claim_observer("bb-flaky", False)
        assert report.bb_breaker_opens == 1
        assert admission.open_bb_circuits(0.0) == frozenset({"bb-flaky"})
        admission.submit(RequestSpec(vm_id="v0", flavor=None), now=0.0)
        assert "bb-flaky" in scheduler.specs[-1].excluded_hosts
        # Expired circuit no longer excludes.
        admission.submit(RequestSpec(vm_id="v1", flavor=None), now=1000.0)
        assert "bb-flaky" not in scheduler.specs[-1].excluded_hosts

    def test_successful_claim_resets_bb_streak(self):
        scheduler = _FakeScheduler()
        admission, report = make_admission(scheduler, bb_breaker_threshold=2)
        scheduler.claim_observer("bb-a", False)
        scheduler.claim_observer("bb-a", True)
        scheduler.claim_observer("bb-a", False)
        assert report.bb_breaker_opens == 0


class _SimStub:
    """Just enough of RegionSimulation for reconciler/invariant units."""

    def __init__(self, region, placement, scheduler=None):
        self.region = region
        self.placement = placement
        self.scheduler = scheduler if scheduler is not None else object()
        self.engine = SimulationEngine()
        self.vms = {}
        self.fault_report = None


def _active_vm(vm_id, catalog, flavor="g_c2_m8"):
    vm = VM(vm_id=vm_id, flavor=catalog.get(flavor))
    vm.transition(VMState.BUILDING)
    vm.transition(VMState.ACTIVE)
    return vm


@pytest.fixture
def sim_stub(region, catalog):
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    return _SimStub(region, placement)


def make_reconciler(sim):
    config = ResilienceConfig()
    report = ResilienceReport(seed=config.seed)
    return InventoryReconciler(sim, config, report), report


def make_checker(sim, health=None, fail_fast=True):
    config = ResilienceConfig(fail_fast=fail_fast)
    report = ResilienceReport(seed=config.seed)
    return InvariantChecker(sim, config, report, health=health), report


class TestInventoryReconciler:
    def test_clean_state_is_a_clean_run(self, sim_stub, catalog):
        vm = _active_vm("vm-0", catalog)
        node = next(sim_stub.region.iter_nodes())
        sim_stub.placement.claim("vm-0", node.building_block, vm.flavor.requested())
        node.add_vm(vm)
        sim_stub.vms["vm-0"] = vm
        reconciler, report = make_reconciler(sim_stub)
        assert reconciler.reconcile(0.0) == 0
        assert report.reconcile_clean_runs == 1

    def test_orphaned_allocation_released(self, sim_stub, catalog):
        flavor = catalog.get("g_c2_m8")
        sim_stub.placement.claim("vm-ghost", "dc1-gp-00", flavor.requested())
        reconciler, report = make_reconciler(sim_stub)
        assert reconciler.reconcile(0.0) == 1
        assert report.orphaned_allocations_released == 1
        assert sim_stub.placement.allocation_for("vm-ghost") is None

    def test_missing_allocation_claimed(self, sim_stub, catalog):
        vm = _active_vm("vm-0", catalog)
        node = next(sim_stub.region.iter_nodes())
        node.add_vm(vm)
        sim_stub.vms["vm-0"] = vm
        reconciler, report = make_reconciler(sim_stub)
        assert reconciler.reconcile(0.0) == 1
        assert report.missing_allocations_claimed == 1
        allocation = sim_stub.placement.allocation_for("vm-0")
        assert allocation.provider_id == node.building_block

    def test_mishomed_allocation_moved(self, sim_stub, catalog):
        vm = _active_vm("vm-0", catalog)
        node = next(sim_stub.region.iter_nodes())  # lives in dc1-gp-00
        node.add_vm(vm)
        sim_stub.vms["vm-0"] = vm
        sim_stub.placement.claim("vm-0", "dc2-gp-00", vm.flavor.requested())
        reconciler, report = make_reconciler(sim_stub)
        assert reconciler.reconcile(0.0) == 1
        assert report.mishomed_allocations_moved == 1
        allocation = sim_stub.placement.allocation_for("vm-0")
        assert allocation.provider_id == node.building_block

    def test_capacity_drift_repaired(self, sim_stub, catalog):
        provider = sim_stub.placement.provider("dc1-gp-00")
        provider.used[VCPU] = 17.0  # corrupted: no allocation backs this
        reconciler, report = make_reconciler(sim_stub)
        assert reconciler.reconcile(0.0) >= 1
        assert report.capacity_drift_repairs == 1
        assert provider.used[VCPU] == 0.0

    def test_index_drift_invalidated(self, region, catalog):
        placement = PlacementService()
        for bb in region.iter_building_blocks():
            placement.register_building_block(bb)
        index = HostStateIndex(region, placement)
        index.refresh()

        class _Sched:
            pass

        sched = _Sched()
        sched.index = index
        sched.invalidate_host = index.invalidate
        sim = _SimStub(region, placement, scheduler=sched)
        # Corrupt the cached view directly (a drift placement never saw).
        state = index.states()[0]
        state.free_vcpus -= 5.0
        reconciler, report = make_reconciler(sim)
        assert reconciler.reconcile(0.0) == 1
        assert report.index_drift_invalidations == 1
        index.refresh()
        fresh = next(s for s in index.states() if s.host_id == state.host_id)
        assert fresh.free_vcpus == placement.provider(state.host_id).free(VCPU)
        index.close()


class TestInvariantChecker:
    def test_clean_state_has_no_violations(self, sim_stub, catalog):
        vm = _active_vm("vm-0", catalog)
        node = next(sim_stub.region.iter_nodes())
        sim_stub.placement.claim("vm-0", node.building_block, vm.flavor.requested())
        node.add_vm(vm)
        sim_stub.vms["vm-0"] = vm
        checker, report = make_checker(sim_stub)
        assert checker.check(0.0) == []
        assert report.invariant_checks == 1

    def test_double_placement_detected(self, sim_stub, catalog):
        vm = _active_vm("vm-0", catalog)
        nodes = list(sim_stub.region.iter_nodes())
        nodes[0].add_vm(vm)
        nodes[1].vms[vm.vm_id] = vm  # bypass add_vm's residency guard
        sim_stub.vms["vm-0"] = vm
        checker, report = make_checker(sim_stub, fail_fast=False)
        violations = checker.check(0.0)
        assert [v.invariant for v in violations] == ["single-placement"]

    def test_fail_fast_raises(self, sim_stub, catalog):
        vm = _active_vm("vm-0", catalog)
        nodes = list(sim_stub.region.iter_nodes())
        nodes[0].add_vm(vm)
        nodes[1].vms[vm.vm_id] = vm
        checker, report = make_checker(sim_stub, fail_fast=True)
        with pytest.raises(InvariantViolationError):
            checker.check(0.0)
        assert len(report.violations) == 1

    def test_allocation_home_mismatch_detected(self, sim_stub, catalog):
        vm = _active_vm("vm-0", catalog)
        node = next(sim_stub.region.iter_nodes())
        node.add_vm(vm)
        sim_stub.vms["vm-0"] = vm
        sim_stub.placement.claim("vm-0", "dc2-gp-00", vm.flavor.requested())
        checker, _ = make_checker(sim_stub, fail_fast=False)
        violations = checker.check(0.0)
        assert any(v.invariant == "single-placement" for v in violations)

    def test_negative_capacity_detected(self, sim_stub):
        provider = sim_stub.placement.provider("dc1-gp-00")
        provider.used[VCPU] = provider.capacity(VCPU) + 10.0
        checker, _ = make_checker(sim_stub, fail_fast=False)
        violations = checker.check(0.0)
        assert any(v.invariant == "capacity" for v in violations)

    def test_untracked_error_vm_detected(self, sim_stub, catalog):
        vm = VM(vm_id="vm-err", flavor=catalog.get("g_c2_m8"))
        vm.transition(VMState.BUILDING)
        vm.transition(VMState.ERROR)
        sim_stub.vms["vm-err"] = vm
        checker, _ = make_checker(sim_stub, fail_fast=False)
        violations = checker.check(0.0)
        assert [v.invariant for v in violations] == ["error-vm-tracked"]
        # A queued evacuation retry makes the same state legitimate.
        sim_stub.engine.schedule(10.0, EVAC_RETRY, vm_id="vm-err", attempt=1)
        assert checker.check(1.0) == []

    def test_quarantine_fence_breach_detected(self, sim_stub, catalog, region):
        health, _ = make_health(sim_stub.region)
        node = next(sim_stub.region.iter_nodes())
        node.quarantined = True
        health.quarantine_residents[node.node_id] = frozenset()
        vm = _active_vm("vm-new", catalog)
        node.add_vm(vm)
        sim_stub.vms["vm-new"] = vm
        sim_stub.placement.claim(
            "vm-new", node.building_block, vm.flavor.requested()
        )
        checker, _ = make_checker(sim_stub, health=health, fail_fast=False)
        violations = checker.check(0.0)
        assert any(v.invariant == "quarantine-fence" for v in violations)
        node.quarantined = False


class TestFailureDomains:
    def test_domain_ids_sorted(self, region):
        assert domain_ids(region, "az") == ["az1", "az2"]
        bbs = domain_ids(region, "bb")
        assert bbs == sorted(bbs) and "dc1-gp-00" in bbs

    def test_domain_members(self, region):
        members = domain_members(region, "bb", "dc1-hana-01")
        assert len(members) == 2
        assert all(n.building_block == "dc1-hana-01" for n in members)
        az1 = domain_members(region, "az", "az1")
        assert all(n.az == "az1" for n in az1)

    def test_unknown_scope_rejected(self, region):
        with pytest.raises(ValueError):
            domain_ids(region, "rack")
        with pytest.raises(ValueError):
            domain_members(region, "rack", "r1")

    def test_partition_overlap_and_heal(self):
        partition = ScrapePartition()
        t1 = partition.start(frozenset({"n1", "n2"}))
        t2 = partition.start(frozenset({"n2", "n3"}))
        assert partition.is_blackholed("n2")
        partition.end(t1)
        assert partition.is_blackholed("n2")  # still behind the second cut
        assert not partition.is_blackholed("n1")
        partition.end(t2)
        assert not partition.is_blackholed("n2")
        partition.end(t2)  # idempotent for stale tokens
        assert partition.partitions_started == 2
        assert partition.partitions_healed == 2
        assert partition.blackholed_scrapes == 2  # only hits while cut count


class TestGracefulDraws:
    """Satellite: empty draws are counted no-ops, never exceptions."""

    def test_pick_victim_with_nothing_healthy(self, region):
        injector = FaultInjector(FaultConfig(seed=1))
        for node in region.iter_nodes():
            node.failed = True
        assert injector.pick_victim(region.iter_nodes()) is None
        assert injector.skipped_draws == 1
        for node in region.iter_nodes():
            node.failed = False

    def test_pick_victim_skips_quarantined(self, region):
        injector = FaultInjector(FaultConfig(seed=1))
        for node in region.iter_nodes():
            node.quarantined = True
        assert injector.pick_victim(region.iter_nodes()) is None
        assert injector.skipped_draws == 1
        for node in region.iter_nodes():
            node.quarantined = False

    def test_pick_domain_with_all_dark(self, region):
        injector = FaultInjector(FaultConfig(seed=1))
        for node in region.iter_nodes():
            node.failed = True
        assert injector.pick_domain(region, "az") is None
        assert injector.skipped_draws == 1
        for node in region.iter_nodes():
            node.failed = False

    def test_targeted_victim_unhealthy_or_unknown(self, region):
        injector = FaultInjector(FaultConfig(seed=1))
        node = next(region.iter_nodes())
        node.failed = True
        assert injector.targeted_victim({node.node_id: node}, node.node_id) is None
        assert injector.targeted_victim({}, "nope") is None
        assert injector.skipped_draws == 2
        node.failed = False


class TestFaultConfigDomains:
    def test_new_rates_flip_any_faults(self):
        assert FaultConfig(az_outage_rate_per_day=0.1).any_faults
        assert FaultConfig(partition_rate_per_day=0.1).any_faults
        assert FaultConfig(flapping_hosts=1).any_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"az_outage_rate_per_day": -1.0},
            {"domain_outage_duration_mean_s": 0.0},
            {"partition_rate_per_day": -0.5},
            {"partition_scope": "rack"},
            {"flapping_hosts": -1},
            {"flapping_period_s": 0.0},
            {"flapping_cycles": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)


# -- end-to-end chaos scenario --------------------------------------------------


def _run_chaos(days=0.5, seed=7):
    from repro.resilience.chaos import ChaosConfig, chaos_summary_json, run_chaos_scenario

    config = ChaosConfig(duration_days=days, seed=seed)
    result = run_chaos_scenario(config)
    return result, chaos_summary_json(result)


class TestChaosScenario:
    @pytest.fixture(scope="class")
    def chaos(self):
        return _run_chaos()

    def test_zero_invariant_violations(self, chaos):
        result, _ = chaos
        assert result.resilience_report.violations == []
        assert result.resilience_report.invariant_checks > 0

    def test_correlated_faults_actually_fired(self, chaos):
        result, _ = chaos
        report = result.fault_report
        # The canonical fault seed drives at least one correlated event
        # plus the flapping host within the first half day.
        assert report.partitions >= 1
        assert report.host_failures >= 1

    def test_admission_counters_surface_in_scheduler_stats(self, chaos):
        result, _ = chaos
        stats = result.scheduler_stats
        for key in (
            "admission_submitted",
            "admission_admitted",
            "admission_shed_rate_limit",
            "admission_shed_breaker",
            "admission_retries",
            "admission_deadline_exceeded",
            "admission_breaker_opens",
        ):
            assert key in stats
        assert stats["admission_submitted"] >= stats["admission_admitted"]

    def test_byte_identical_replay(self, chaos):
        _, first = chaos
        _, second = _run_chaos()
        assert first == second

    def test_seed_changes_the_run(self, chaos):
        _, first = chaos
        _, other = _run_chaos(seed=8)
        assert first != other


class TestCLI:
    def test_chaos_command_emits_deterministic_json(self, capsys):
        assert main(["chaos", "--days", "0.1", "--json-only"]) == 0
        first = capsys.readouterr().out
        assert main(["chaos", "--days", "0.1", "--json-only"]) == 0
        second = capsys.readouterr().out
        assert first == second
        summary = json.loads(first)
        assert summary["resilience_report"]["invariants"]["violations"] == []
        assert "fault_report" in summary
        assert "scheduler_stats" in summary

    def test_chaos_human_output(self, capsys):
        assert main(["chaos", "--days", "0.1", "--seed", "11"]) == 0
        captured = capsys.readouterr()
        assert "Resilience report" in captured.err
        json.loads(captured.out)

    def test_chaos_out_file(self, tmp_path):
        out = tmp_path / "chaos.json"
        assert main(
            ["chaos", "--days", "0.1", "--json-only", "--out", str(out)]
        ) == 0
        summary = json.loads(out.read_text())
        assert summary["resilience_report"]["invariants"]["checks"] > 0

    def test_faults_exits_nonzero_on_dead_letters(self, tmp_path, capsys):
        # Aggressive failure rate on a tiny fabric with few evac retries:
        # evacuations exhaust their retries and dead-letter.
        code = main(
            [
                "faults", "--days", "0.5", "--seed", "7",
                "--bbs", "1", "--nodes-per-bb", "2",
                "--initial-vms", "60", "--failure-rate", "40",
                "--repair-hours", "24", "--evac-retries", "2",
                "--out", str(tmp_path / "faults.json"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "dead-lettered" in captured.err
        assert "vm_id" in captured.err  # summary table header

    def test_faults_exits_zero_when_queue_empty(self, tmp_path, capsys):
        code = main(
            [
                "faults", "--days", "0.1", "--seed", "7",
                "--failure-rate", "0", "--initial-vms", "10",
                "--out", str(tmp_path / "faults.json"),
            ]
        )
        assert code == 0
        assert "vm_id" not in capsys.readouterr().err  # no dead-letter table
