"""Tests for temporal demand patterns."""

import numpy as np
import pytest

from repro.workloads import patterns as pat


@pytest.fixture
def week_grid() -> np.ndarray:
    return np.arange(0, 7 * pat.SECONDS_PER_DAY, 900.0)


class TestConstant:
    def test_level(self, week_grid):
        assert np.all(pat.constant(0.4)(week_grid) == 0.4)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            pat.constant(-0.1)


class TestDiurnal:
    def test_peaks_at_peak_hour(self):
        pattern = pat.diurnal(base=0.1, peak=0.9, peak_hour=12.0)
        hours = np.arange(0, 24) * 3600.0
        values = pattern(hours)
        assert np.argmax(values) == 12
        assert values.max() == pytest.approx(0.9)
        assert values.min() >= 0.1 - 1e-9

    def test_wraps_around_midnight(self):
        pattern = pat.diurnal(base=0.0, peak=1.0, peak_hour=0.0, width_hours=2.0)
        values = pattern(np.asarray([0.0, 23 * 3600.0, 1 * 3600.0]))
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(values[2])

    def test_peak_below_base_raises(self):
        with pytest.raises(ValueError):
            pat.diurnal(base=0.5, peak=0.1)


class TestWeekly:
    def test_weekend_scaled(self, week_grid):
        # Epoch day 0 is Thursday; days 2-3 (Sat/Sun) are the weekend.
        values = pat.weekly(1.0, 0.5)(week_grid)
        saturday = week_grid[
            (week_grid >= 2 * pat.SECONDS_PER_DAY)
            & (week_grid < 3 * pat.SECONDS_PER_DAY)
        ]
        assert np.all(pat.weekly(1.0, 0.5)(saturday) == 0.5)
        assert values[0] == 1.0  # Thursday

    def test_five_weekdays_two_weekend_days(self, week_grid):
        values = pat.weekly(1.0, 0.0)(week_grid)
        weekend_share = float(np.mean(values == 0.0))
        assert weekend_share == pytest.approx(2 / 7, abs=0.01)


class TestRamp:
    def test_linear_progression(self):
        pattern = pat.ramp(0.0, 1.0, duration=100.0)
        values = pattern(np.asarray([0.0, 50.0, 100.0, 200.0]))
        assert values == pytest.approx([0.0, 0.5, 1.0, 1.0])

    def test_relative_to_first_timestamp(self):
        pattern = pat.ramp(0.0, 1.0, duration=100.0)
        values = pattern(np.asarray([1000.0, 1100.0]))
        assert values == pytest.approx([0.0, 1.0])

    def test_decreasing_ramp(self):
        pattern = pat.ramp(0.8, 0.2, duration=10.0)
        values = pattern(np.asarray([0.0, 10.0]))
        assert values == pytest.approx([0.8, 0.2])

    def test_empty_input(self):
        assert len(pat.ramp(0, 1, 10)(np.asarray([]))) == 0


class TestBursty:
    def test_levels_are_base_or_burst(self, week_grid, rng):
        pattern = pat.bursty(0.1, 0.9, burst_probability=0.3, rng=rng)
        values = pattern(week_grid)
        assert set(np.unique(values)) <= {0.1, 0.9}

    def test_burst_share_tracks_probability(self, week_grid, rng):
        pattern = pat.bursty(0.0, 1.0, burst_probability=0.25, rng=rng, correlation=1)
        share = float(np.mean(pattern(week_grid)))
        assert 0.2 < share < 0.3

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            pat.bursty(0.1, 0.9, burst_probability=1.5, rng=rng)


class TestSpikeTrain:
    def test_period_and_width(self):
        pattern = pat.spike_train(0.0, 1.0, period=100.0, spike_width=10.0)
        grid = np.arange(0, 300, 1.0)
        values = pattern(grid)
        assert float(np.mean(values)) == pytest.approx(0.1, abs=0.02)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            pat.spike_train(0, 1, period=0, spike_width=1)


class TestComposite:
    def test_max_mode(self, week_grid):
        combo = pat.composite([pat.constant(0.2), pat.constant(0.6)], "max")
        assert np.all(combo(week_grid) == 0.6)

    def test_sum_clipped(self, week_grid):
        combo = pat.composite([pat.constant(0.8), pat.constant(0.8)], "sum")
        assert np.all(combo(week_grid) == 1.0)

    def test_product(self, week_grid):
        combo = pat.composite([pat.constant(0.5), pat.constant(0.5)], "product")
        assert np.all(combo(week_grid) == 0.25)

    def test_empty_and_bad_mode(self):
        with pytest.raises(ValueError):
            pat.composite([], "max")
        with pytest.raises(ValueError):
            pat.composite([pat.constant(0.1)], "avg")


class TestNoise:
    def test_noise_clipped_to_unit_interval(self, week_grid, rng):
        noisy = pat.with_noise(pat.constant(0.02), sigma=0.5, rng=rng)
        values = noisy(week_grid)
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    def test_negative_sigma_raises(self, rng):
        with pytest.raises(ValueError):
            pat.with_noise(pat.constant(0.5), sigma=-1, rng=rng)
