"""Tests for workload clustering."""

import numpy as np
import pytest

from repro.core.clustering import cluster_workloads, kmeans


class TestKmeans:
    def test_separates_obvious_clusters(self, rng):
        a = rng.normal(0.0, 0.1, size=(50, 2))
        b = rng.normal(5.0, 0.1, size=(50, 2))
        features = np.vstack([a, b])
        _centers, assignments, inertia = kmeans(features, k=2, rng=rng)
        first, second = assignments[:50], assignments[50:]
        assert len(set(first.tolist())) == 1
        assert len(set(second.tolist())) == 1
        assert first[0] != second[0]
        assert inertia < 50.0

    def test_k1_groups_everything(self, rng):
        features = rng.normal(size=(20, 3))
        _c, assignments, _i = kmeans(features, k=1, rng=rng)
        assert set(assignments.tolist()) == {0}

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), k=0, rng=rng)
        with pytest.raises(ValueError):
            kmeans(np.zeros((2, 2)), k=5, rng=rng)

    def test_deterministic_given_seed(self):
        features = np.random.default_rng(0).normal(size=(40, 4))
        runs = [
            kmeans(features, 3, np.random.default_rng(1))[1] for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0], runs[1])


class TestWorkloadClustering:
    def test_every_vm_assigned(self, small_dataset):
        result = cluster_workloads(small_dataset, k=4)
        assert len(result.assignments) == small_dataset.vm_count
        assert sum(c.size for c in result.clusters) == small_dataset.vm_count

    def test_finds_database_archetype(self, small_dataset):
        """The HANA population must surface as a memory-resident cluster."""
        result = cluster_workloads(small_dataset, k=4)
        labels = {c.label for c in result.clusters}
        assert "memory-resident database" in labels

    def test_finds_idle_overprovisioned_majority(self, small_dataset):
        """Fig 14a: the dominant archetype is idle/overprovisioned — low
        CPU with long lifetimes."""
        result = cluster_workloads(small_dataset, k=4)
        biggest = result.clusters[0]
        assert biggest.cpu_avg < 0.5

    def test_cluster_of_lookup(self, small_dataset):
        result = cluster_workloads(small_dataset, k=3)
        cluster = result.cluster_of(0)
        assert cluster.cluster_id == result.assignments[0]

    def test_clusters_sorted_by_size(self, small_dataset):
        result = cluster_workloads(small_dataset, k=4)
        sizes = [c.size for c in result.clusters]
        assert sizes == sorted(sizes, reverse=True)
