"""Tests for the per-table builders (Tables 1-5)."""

import numpy as np
import pytest

from repro.analysis import tables


class TestTables1And2:
    def test_table1_shares_match_paper(self, small_dataset):
        table = tables.table1_vcpu_classes(small_dataset)
        shares = dict(zip(table["category"], np.asarray(table["share"], dtype=float)))
        paper = dict(
            zip(table["category"], np.asarray(table["paper_share"], dtype=float))
        )
        for category in ("small", "medium", "large", "xlarge"):
            assert shares[category] == pytest.approx(paper[category], abs=0.06)

    def test_table2_shares_match_paper(self, small_dataset):
        table = tables.table2_ram_classes(small_dataset)
        shares = dict(zip(table["category"], np.asarray(table["share"], dtype=float)))
        paper = dict(
            zip(table["category"], np.asarray(table["paper_share"], dtype=float))
        )
        for category in ("small", "medium", "large", "xlarge"):
            assert shares[category] == pytest.approx(paper[category], abs=0.06)

    def test_paper_counts_embedded(self, small_dataset):
        table = tables.table1_vcpu_classes(small_dataset)
        counts = dict(
            zip(table["category"], np.asarray(table["paper_count"], dtype=int))
        )
        assert counts == {"small": 28_446, "medium": 14_340, "large": 1_831,
                          "xlarge": 738}


class TestTable3:
    def test_sap_row_computed_from_dataset(self, small_dataset):
        table = tables.table3_dataset_comparison(small_dataset)
        rows = {str(r["dataset"]): r for r in table.rows()}
        sap = rows["SAP (this work)"]
        assert sap["vms"] == 1
        assert sap["cpu"] == 1 and sap["memory"] == 1
        assert sap["network"] == 1 and sap["storage"] == 1
        assert sap["duration_days"] == 30
        assert sap["public"] == 1

    def test_sap_is_only_public_vm_dataset(self, small_dataset):
        """Table 3's headline: the SAP dataset is the only public one with
        VM workloads."""
        table = tables.table3_dataset_comparison(small_dataset)
        public_vm = [
            r for r in table.rows() if r["vms"] == 1 and r["public"] == 1
        ]
        assert len(public_vm) == 1
        assert public_vm[0]["dataset"] == "SAP (this work)"

    def test_lifetime_span_reaches_years(self, small_dataset):
        table = tables.table3_dataset_comparison(small_dataset)
        rows = {str(r["dataset"]): r for r in table.rows()}
        assert str(rows["SAP (this work)"]["lifetime"]).endswith("years")

    def test_seven_rows(self, small_dataset):
        assert len(tables.table3_dataset_comparison(small_dataset)) == 7


class TestTables4And5:
    def test_table4_all_metrics(self):
        table = tables.table4_metric_catalog()
        assert len(table) == 14

    def test_table5_static_reference(self):
        table = tables.table5_datacenters()
        assert len(table) == 29
        assert int(np.sum(np.asarray(table["hypervisors"], dtype=int))) == 6541
