"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "ds"
    code = main(
        [
            "generate", "--out", str(out),
            "--scale", "0.01", "--days", "4",
            "--sampling", "21600", "--seed", "1",
        ]
    )
    assert code == 0
    return out


def test_generate_writes_archive(archive):
    assert (archive / "meta.json").exists()
    meta = json.loads((archive / "meta.json").read_text())
    assert meta["seed"] == 1


def test_summary(archive, capsys):
    assert main(["summary", str(archive)]) == 0
    out = capsys.readouterr().out
    assert "nodes" in out
    assert "vms" in out


def test_report(archive, capsys):
    assert main(["report", str(archive)]) == 0
    out = capsys.readouterr().out
    assert "Fig 14" in out
    assert "Table 5" in out


def test_query(archive, capsys):
    code = main(
        [
            "query", str(archive),
            "max(vrops_hostsystem_cpu_core_utilization_percentage)",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "__agg__=max" in out


def test_query_error_exit_code(archive, capsys):
    assert main(["query", str(archive), "mean("]) == 2
    assert "query error" in capsys.readouterr().err


def test_missing_archive_rejected(tmp_path):
    with pytest.raises(SystemExit, match="not a dataset archive"):
        main(["summary", str(tmp_path)])


def test_validate(archive, capsys):
    assert main(["validate", str(archive)]) in (0, 1)
    out = capsys.readouterr().out
    assert "calibration checks passed" in out


def test_figure_heatmap(archive, capsys):
    assert main(["figure", str(archive), "fig10"]) == 0
    out = capsys.readouterr().out
    assert "free memory per node" in out
    assert any(c in out for c in "░▒▓█")


def test_figure_cdf(archive, capsys):
    assert main(["figure", str(archive), "fig14"]) == 0
    assert "utilisation CDF" in capsys.readouterr().out


def test_figure_unknown(archive, capsys):
    assert main(["figure", str(archive), "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_help_lists_subcommands(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    for sub in (
        "generate", "report", "summary", "query", "validate", "figure", "verify",
    ):
        assert sub in out


# -- --config error paths: exit 2 with a usable one-line message, no traceback ---


def _run_expecting_exit_2(argv, capsys):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: ")
    assert "Traceback" not in err
    return err


@pytest.mark.parametrize("command", ["faults", "chaos"])
def test_config_file_missing(command, capsys, tmp_path):
    missing = str(tmp_path / "nope.json")
    err = _run_expecting_exit_2([command, "--config", missing], capsys)
    assert "file not found" in err
    assert missing in err


@pytest.mark.parametrize("command", ["faults", "chaos"])
def test_config_file_invalid_json(command, capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"seed": 1,\n  "oops"')
    err = _run_expecting_exit_2([command, "--config", str(path)], capsys)
    assert "invalid JSON" in err
    assert "line 2" in err


@pytest.mark.parametrize("command", ["faults", "chaos"])
def test_config_file_non_object_top_level(command, capsys, tmp_path):
    path = tmp_path / "list.json"
    path.write_text("[1, 2, 3]")
    err = _run_expecting_exit_2([command, "--config", str(path)], capsys)
    assert "must be a JSON object" in err


def test_faults_config_unknown_key_named(capsys, tmp_path):
    path = tmp_path / "typo.json"
    path.write_text('{"host_failure_rate_per_dya": 3.0}')
    err = _run_expecting_exit_2(["faults", "--config", str(path)], capsys)
    assert "host_failure_rate_per_dya" in err
    assert "known:" in err


def test_faults_config_invalid_value_message(capsys, tmp_path):
    path = tmp_path / "neg.json"
    path.write_text('{"host_failure_rate_per_day": -1}')
    err = _run_expecting_exit_2(["faults", "--config", str(path)], capsys)
    assert "host_failure_rate_per_day must be >= 0" in err


def test_chaos_config_unknown_section(capsys, tmp_path):
    path = tmp_path / "sections.json"
    path.write_text('{"failts": {}}')
    err = _run_expecting_exit_2(["chaos", "--config", str(path)], capsys)
    assert "unknown sections failts" in err
    assert "known: faults, resilience" in err


def test_chaos_config_bad_resilience_value(capsys, tmp_path):
    path = tmp_path / "res.json"
    path.write_text('{"resilience": {"quarantine_backoff": 0.5}}')
    err = _run_expecting_exit_2(["chaos", "--config", str(path)], capsys)
    assert "quarantine_backoff must be >= 1" in err


def test_faults_valid_config_runs(capsys, tmp_path):
    path = tmp_path / "good.json"
    path.write_text(
        '{"host_failure_rate_per_day": 2.0, "scrape_gap_probability": 0.01}'
    )
    out_path = tmp_path / "report.json"
    code = main(
        [
            "faults", "--config", str(path), "--days", "0.05",
            "--initial-vms", "20", "--arrival-rate", "2",
            "--out", str(out_path),
        ]
    )
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["host_failures"] >= 0
    # --seed flows into the injector when the file does not pin one.
    assert report["seed"] == 7
