"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "ds"
    code = main(
        [
            "generate", "--out", str(out),
            "--scale", "0.01", "--days", "4",
            "--sampling", "21600", "--seed", "1",
        ]
    )
    assert code == 0
    return out


def test_generate_writes_archive(archive):
    assert (archive / "meta.json").exists()
    meta = json.loads((archive / "meta.json").read_text())
    assert meta["seed"] == 1


def test_summary(archive, capsys):
    assert main(["summary", str(archive)]) == 0
    out = capsys.readouterr().out
    assert "nodes" in out
    assert "vms" in out


def test_report(archive, capsys):
    assert main(["report", str(archive)]) == 0
    out = capsys.readouterr().out
    assert "Fig 14" in out
    assert "Table 5" in out


def test_query(archive, capsys):
    code = main(
        [
            "query", str(archive),
            "max(vrops_hostsystem_cpu_core_utilization_percentage)",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "__agg__=max" in out


def test_query_error_exit_code(archive, capsys):
    assert main(["query", str(archive), "mean("]) == 2
    assert "query error" in capsys.readouterr().err


def test_missing_archive_rejected(tmp_path):
    with pytest.raises(SystemExit, match="not a dataset archive"):
        main(["summary", str(tmp_path)])


def test_validate(archive, capsys):
    assert main(["validate", str(archive)]) in (0, 1)
    out = capsys.readouterr().out
    assert "calibration checks passed" in out


def test_figure_heatmap(archive, capsys):
    assert main(["figure", str(archive), "fig10"]) == 0
    out = capsys.readouterr().out
    assert "free memory per node" in out
    assert any(c in out for c in "░▒▓█")


def test_figure_cdf(archive, capsys):
    assert main(["figure", str(archive), "fig14"]) == 0
    assert "utilisation CDF" in capsys.readouterr().out


def test_figure_unknown(archive, capsys):
    assert main(["figure", str(archive), "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_help_lists_subcommands(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    for sub in ("generate", "report", "summary", "query", "validate", "figure"):
        assert sub in out
