"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "ds"
    code = main(
        [
            "generate", "--out", str(out),
            "--scale", "0.01", "--days", "4",
            "--sampling", "21600", "--seed", "1",
        ]
    )
    assert code == 0
    return out


def test_generate_writes_archive(archive):
    assert (archive / "meta.json").exists()
    meta = json.loads((archive / "meta.json").read_text())
    assert meta["seed"] == 1


def test_summary(archive, capsys):
    assert main(["summary", str(archive)]) == 0
    out = capsys.readouterr().out
    assert "nodes" in out
    assert "vms" in out


def test_report(archive, capsys):
    assert main(["report", str(archive)]) == 0
    out = capsys.readouterr().out
    assert "Fig 14" in out
    assert "Table 5" in out


def test_query(archive, capsys):
    code = main(
        [
            "query", str(archive),
            "max(vrops_hostsystem_cpu_core_utilization_percentage)",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "__agg__=max" in out


def test_query_error_exit_code(archive, capsys):
    assert main(["query", str(archive), "mean("]) == 2
    assert "query error" in capsys.readouterr().err


def test_missing_archive_rejected(tmp_path):
    with pytest.raises(SystemExit, match="not a dataset archive"):
        main(["summary", str(tmp_path)])


def test_validate(archive, capsys):
    assert main(["validate", str(archive)]) in (0, 1)
    out = capsys.readouterr().out
    assert "calibration checks passed" in out


def test_figure_heatmap(archive, capsys):
    assert main(["figure", str(archive), "fig10"]) == 0
    out = capsys.readouterr().out
    assert "free memory per node" in out
    assert any(c in out for c in "░▒▓█")


def test_figure_cdf(archive, capsys):
    assert main(["figure", str(archive), "fig14"]) == 0
    assert "utilisation CDF" in capsys.readouterr().out


def test_figure_unknown(archive, capsys):
    assert main(["figure", str(archive), "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_help_lists_subcommands(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    for sub in (
        "generate", "report", "summary", "query", "validate", "figure", "verify",
    ):
        assert sub in out


# -- --config error paths: exit 2 with a usable one-line message, no traceback ---


def _run_expecting_exit_2(argv, capsys):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: ")
    assert "Traceback" not in err
    return err


@pytest.mark.parametrize("command", ["faults", "chaos"])
def test_config_file_missing(command, capsys, tmp_path):
    missing = str(tmp_path / "nope.json")
    err = _run_expecting_exit_2([command, "--config", missing], capsys)
    assert "file not found" in err
    assert missing in err


@pytest.mark.parametrize("command", ["faults", "chaos"])
def test_config_file_invalid_json(command, capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"seed": 1,\n  "oops"')
    err = _run_expecting_exit_2([command, "--config", str(path)], capsys)
    assert "invalid JSON" in err
    assert "line 2" in err


@pytest.mark.parametrize("command", ["faults", "chaos"])
def test_config_file_non_object_top_level(command, capsys, tmp_path):
    path = tmp_path / "list.json"
    path.write_text("[1, 2, 3]")
    err = _run_expecting_exit_2([command, "--config", str(path)], capsys)
    assert "must be a JSON object" in err


def test_faults_config_unknown_key_named(capsys, tmp_path):
    path = tmp_path / "typo.json"
    path.write_text('{"host_failure_rate_per_dya": 3.0}')
    err = _run_expecting_exit_2(["faults", "--config", str(path)], capsys)
    assert "host_failure_rate_per_dya" in err
    assert "known:" in err


def test_faults_config_invalid_value_message(capsys, tmp_path):
    path = tmp_path / "neg.json"
    path.write_text('{"host_failure_rate_per_day": -1}')
    err = _run_expecting_exit_2(["faults", "--config", str(path)], capsys)
    assert "host_failure_rate_per_day must be >= 0" in err


def test_chaos_config_unknown_section(capsys, tmp_path):
    path = tmp_path / "sections.json"
    path.write_text('{"failts": {}}')
    err = _run_expecting_exit_2(["chaos", "--config", str(path)], capsys)
    assert "unknown scenario config keys: failts" in err
    assert "known:" in err and "faults" in err and "resilience" in err


def test_chaos_config_bad_resilience_value(capsys, tmp_path):
    path = tmp_path / "res.json"
    path.write_text('{"resilience": {"quarantine_backoff": 0.5}}')
    err = _run_expecting_exit_2(["chaos", "--config", str(path)], capsys)
    assert "quarantine_backoff must be >= 1" in err


def test_faults_valid_config_runs(capsys, tmp_path):
    path = tmp_path / "good.json"
    path.write_text(
        '{"host_failure_rate_per_day": 2.0, "scrape_gap_probability": 0.01}'
    )
    out_path = tmp_path / "report.json"
    code = main(
        [
            "faults", "--config", str(path), "--days", "0.05",
            "--initial-vms", "20", "--arrival-rate", "2",
            "--out", str(out_path),
        ]
    )
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["host_failures"] >= 0
    # --seed flows into the injector when the file does not pin one.
    assert report["seed"] == 7


# -- repro crash -----------------------------------------------------------------


def test_help_lists_crash_subcommand(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    assert "crash" in capsys.readouterr().out


def test_crash_tiny_single_seed_ok(capsys, tmp_path):
    out = tmp_path / "crash.json"
    code = main(
        [
            "crash", "--scenario", "tiny", "--seeds", "1",
            "--json-only", "--out", str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["ok"] is True
    assert report["seeds"] == [7]  # count form: 1 seed from BASE_SEED
    assert {c["point"] for c in report["cycles"]} == {
        "pre-op", "mid-claim", "post-apply", "post-journal",
        "mid-snapshot", "post-snapshot",
    }
    assert all(c["field_identical"] for c in report["cycles"])
    assert {c["mode"] for c in report["corruption"]} == {
        "truncate", "bitflip-tail", "bitflip-interior", "dup-tail",
    }


def test_crash_explicit_seed_list_reported(capsys, monkeypatch):
    """Comma form passes exact seeds through to the harness."""
    from repro.recovery import harness

    captured = {}

    def fake(scenario, seeds, *, snapshot_every, progress=None):
        captured["seeds"] = list(seeds)
        captured["snapshot_every"] = snapshot_every
        return harness.CrashReport(
            scenario=scenario.name, seeds=list(seeds),
            snapshot_every=snapshot_every,
        )

    monkeypatch.setattr(harness, "run_crash_cycles", fake)
    code = main(
        ["crash", "--scenario", "tiny", "--seeds", "11,13",
         "--snapshot-every", "10", "--json-only"]
    )
    assert code == 0
    assert captured == {"seeds": [11, 13], "snapshot_every": 10}
    assert json.loads(capsys.readouterr().out)["seeds"] == [11, 13]


def test_crash_unknown_scenario_exits_2(capsys):
    err = _run_expecting_exit_2(["crash", "--scenario", "wat"], capsys)
    assert "unknown scenario" in err


@pytest.mark.parametrize("seeds", ["0", "x", "7,,y"])
def test_crash_bad_seeds_exit_2(seeds, capsys):
    err = _run_expecting_exit_2(
        ["crash", "--scenario", "tiny", "--seeds", seeds], capsys
    )
    assert "--seeds" in err


def test_crash_bad_snapshot_cadence_exits_2(capsys):
    err = _run_expecting_exit_2(
        ["crash", "--scenario", "tiny", "--snapshot-every", "0"], capsys
    )
    assert "--snapshot-every" in err


# -- chaos --journal -------------------------------------------------------------


def test_chaos_journal_writes_valid_wal(capsys, tmp_path):
    from repro.recovery import read_journal

    path = tmp_path / "chaos.wal"
    code = main(
        ["chaos", "--days", "0.02", "--journal", str(path), "--json-only"]
    )
    assert code == 0
    scan = read_journal(path)
    assert not scan.torn
    assert scan.records
    kinds = {record["t"] for _, record in scan.records}
    assert "clock" in kinds


def test_chaos_journal_summary_line(capsys, tmp_path):
    path = tmp_path / "chaos.wal"
    code = main(["chaos", "--days", "0.02", "--journal", str(path)])
    assert code == 0
    assert "control-plane records" in capsys.readouterr().err


# -- Ctrl-C: every long-running command exits 130 with a one-line message --------


def _assert_interrupted(code, capsys, command):
    assert code == 130
    err = capsys.readouterr().err
    assert f"repro {command}: interrupted during" in err
    assert "partial results discarded" in err
    assert "Traceback" not in err


def test_verify_interrupt_exits_130(monkeypatch, capsys):
    from repro.verify import runner

    def boom(config, progress=None):
        if progress is not None:
            progress("metamorphic (seed 8)")
        raise KeyboardInterrupt

    monkeypatch.setattr(runner, "run_verify", boom)
    code = main(["verify", "--scenario", "tiny", "--json-only"])
    _assert_interrupted(code, capsys, "verify")


def test_verify_interrupt_names_the_running_check(monkeypatch, capsys):
    from repro.verify import runner

    def boom(config, progress=None):
        progress("oracle (seed 7)")
        raise KeyboardInterrupt

    monkeypatch.setattr(runner, "run_verify", boom)
    assert main(["verify", "--scenario", "tiny", "--json-only"]) == 130
    assert "oracle (seed 7)" in capsys.readouterr().err


def test_faults_interrupt_exits_130(monkeypatch, capsys):
    from repro.config import ScenarioSpec

    def boom(self, journal=None):
        raise KeyboardInterrupt

    monkeypatch.setattr(ScenarioSpec, "run", boom)
    code = main(["faults", "--days", "0.05"])
    _assert_interrupted(code, capsys, "faults")


def test_chaos_interrupt_exits_130(monkeypatch, capsys):
    from repro.config import ScenarioSpec

    def boom(self, journal=None):
        raise KeyboardInterrupt

    monkeypatch.setattr(ScenarioSpec, "run", boom)
    code = main(["chaos", "--days", "0.05", "--json-only"])
    _assert_interrupted(code, capsys, "chaos")


def test_crash_interrupt_exits_130(monkeypatch, capsys):
    from repro.recovery import harness

    def boom(scenario, seeds, *, snapshot_every, progress=None):
        if progress is not None:
            progress("seed 7: crash at mid-claim/op 37")
        raise KeyboardInterrupt

    monkeypatch.setattr(harness, "run_crash_cycles", boom)
    code = main(["crash", "--scenario", "tiny", "--json-only"])
    _assert_interrupted(code, capsys, "crash")
    # Reporting where it died requires re-reading stderr, so assert on
    # the same capture via a fresh run:
    monkeypatch.setattr(harness, "run_crash_cycles", boom)
    assert main(["crash", "--scenario", "tiny", "--json-only"]) == 130
    assert "mid-claim/op 37" in capsys.readouterr().err


# -- repro torture ---------------------------------------------------------------


def test_help_lists_torture_subcommand(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    assert "torture" in capsys.readouterr().out


def test_torture_tiny_green_and_byte_stable(capsys, tmp_path):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    for out in (first, second):
        code = main(
            [
                "torture", "--scenario", "tiny", "--seeds", "1",
                "--schedules", "10", "--json-only", "--out", str(out),
            ]
        )
        assert code == 0
    assert first.read_bytes() == second.read_bytes()
    report = json.loads(first.read_text())
    assert report["ok"] is True
    assert {c["artifact"] for c in report["cases"]} == {
        "wal", "snapshot", "report", "golden", "sweep-journal",
    }
    # Byte-stable means no filesystem paths leak into case details.
    assert "/tmp" not in first.read_text()


def test_torture_unknown_scenario_exits_2(capsys):
    err = _run_expecting_exit_2(["torture", "--scenario", "wat"], capsys)
    assert "unknown scenario" in err


def test_torture_bad_schedules_exits_2(capsys):
    err = _run_expecting_exit_2(["torture", "--schedules", "0"], capsys)
    assert "--schedules" in err


def test_torture_interrupt_exits_130(monkeypatch, capsys):
    from repro.iofaults import torture

    def boom(config, progress=None):
        if progress is not None:
            progress("seed 7: schedule 3/15 (snapshot)")
        raise KeyboardInterrupt

    monkeypatch.setattr(torture, "run_torture", boom)
    code = main(["torture", "--json-only"])
    _assert_interrupted(code, capsys, "torture")


# -- unwritable --out: exit 2 with one line, like a malformed --config -----------


@pytest.fixture
def blocked_out(tmp_path):
    """An --out path whose parent is a regular file: every write fails."""
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    return str(blocker / "report.json")


def test_torture_out_unwritable_exits_2(blocked_out, capsys):
    err = _run_expecting_exit_2(
        [
            "torture", "--seeds", "1", "--schedules", "2",
            "--json-only", "--out", blocked_out,
        ],
        capsys,
    )
    assert "--out" in err and blocked_out in err


def test_faults_out_unwritable_exits_2(blocked_out, capsys):
    # faults has no --json-only, so scenario progress precedes the error:
    # assert on the final stderr line rather than the whole stream.
    with pytest.raises(SystemExit) as exc:
        main(
            [
                "faults", "--days", "0.05", "--initial-vms", "20",
                "--arrival-rate", "2", "--out", blocked_out,
            ]
        )
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "Traceback" not in err
    last = err.rstrip("\n").splitlines()[-1]
    assert last.startswith("repro: faults --out")
    assert blocked_out in last


def test_generate_out_unwritable_exits_2(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    with pytest.raises(SystemExit) as exc:
        main(
            [
                "generate", "--out", str(blocker / "ds"),
                "--scale", "0.01", "--days", "1", "--sampling", "21600",
            ]
        )
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "Traceback" not in err
    last = err.rstrip("\n").splitlines()[-1]
    assert last.startswith("repro: generate --out")


def test_chaos_journal_unwritable_exits_2(blocked_out, capsys):
    err = _run_expecting_exit_2(
        ["chaos", "--days", "0.05", "--json-only", "--journal", blocked_out],
        capsys,
    )
    assert "--journal" in err and blocked_out in err
