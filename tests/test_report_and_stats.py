"""Tests for the experiment report renderer and stats helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.report import render_experiments_report
from repro.analysis.stats import coefficient_of_variation, gini, percentile_summary


class TestReport:
    def test_report_covers_every_artifact(self, small_dataset):
        report = render_experiments_report(small_dataset)
        for artifact in (
            "Fig 5", "Fig 6", "Fig 7", "Fig 8", "Fig 9", "Fig 10",
            "Figs 11-12", "Fig 13", "Fig 14", "Fig 15",
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
        ):
            assert artifact in report, f"report is missing {artifact}"

    def test_report_contains_measured_numbers(self, small_dataset):
        report = render_experiments_report(small_dataset)
        assert "Measured" in report
        assert str(small_dataset.node_count) in report


class TestStats:
    def test_percentile_summary_fields(self):
        summary = percentile_summary([1, 2, 3, 4, 5])
        assert summary["mean"] == 3.0
        assert summary["p50"] == 3.0
        assert summary["min"] == 1 and summary["max"] == 5

    def test_percentile_summary_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_summary([])

    def test_gini_extremes(self):
        assert gini([1, 1, 1, 1]) == pytest.approx(0.0)
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_gini_all_zero(self):
        assert gini([0, 0]) == 0.0

    def test_gini_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([0, 10]) == pytest.approx(1.0)


@given(
    values=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_property_gini_bounds(values):
    g = gini(values)
    assert -1e-9 <= g < 1.0


@given(
    values=st.lists(
        # Away from the subnormal range, where scaling underflows to zero.
        st.one_of(st.just(0.0), st.floats(min_value=1e-3, max_value=1e6)),
        min_size=2,
        max_size=100,
    ),
    scale=st.floats(min_value=0.1, max_value=100),
)
def test_property_gini_scale_invariant(values, scale):
    scaled = list(np.asarray(values) * scale)
    assert gini(values) == pytest.approx(gini(scaled), abs=1e-7)
