"""Tests for imbalance and fragmentation scoring."""

import numpy as np
import pytest

from repro.core.imbalance import (
    bb_imbalance_report,
    fragmentation_score,
    inter_bb_imbalance,
    intra_bb_spread,
)


def test_intra_bb_spread_fields(small_dataset):
    bb = small_dataset.building_blocks()[0]
    stats = intra_bb_spread(small_dataset, bb)
    assert set(stats) == {
        "min_used_pct", "max_used_pct", "mean_used_pct", "spread_pct", "node_count",
    }
    assert stats["min_used_pct"] <= stats["mean_used_pct"] <= stats["max_used_pct"]
    assert stats["spread_pct"] == pytest.approx(
        stats["max_used_pct"] - stats["min_used_pct"]
    )


def test_some_bb_shows_significant_intra_spread(small_dataset):
    """Fig 7: nodes within one BB differ strongly in utilisation."""
    report = bb_imbalance_report(small_dataset)
    assert float(np.max(report["spread_pct"])) > 20.0


def test_report_covers_all_bbs(small_dataset):
    report = bb_imbalance_report(small_dataset)
    assert set(str(b) for b in report["bb_id"]) == set(small_dataset.building_blocks())


def test_report_sorted_by_spread(small_dataset):
    report = bb_imbalance_report(small_dataset)
    spreads = np.asarray(report["spread_pct"], dtype=float)
    assert np.all(np.diff(spreads) <= 1e-9)


def test_report_dc_scoped(small_dataset):
    dc = small_dataset.datacenters()[0]
    report = bb_imbalance_report(small_dataset, dc_id=dc)
    dc_bbs = {str(b) for b in small_dataset.nodes_in(dc_id=dc)["bb_id"]}
    assert set(str(b) for b in report["bb_id"]) == dc_bbs


def test_inter_bb_imbalance_positive(small_dataset):
    """Fig 6: building blocks differ in mean utilisation."""
    assert inter_bb_imbalance(small_dataset) > 1.0


def test_unknown_bb_raises(small_dataset):
    with pytest.raises(ValueError):
        intra_bb_spread(small_dataset, "ghost-bb")


def test_fragmentation_score_bounds(small_dataset):
    score = fragmentation_score(small_dataset)
    assert 0.0 <= score <= 1.0


def test_fragmentation_positive_with_hotspots(small_dataset):
    """Hot nodes coexist with mostly-free ones → stranded free capacity."""
    assert fragmentation_score(small_dataset) > 0.1
