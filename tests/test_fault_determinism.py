"""Determinism of fault injection: same seed, byte-identical replay.

This is the tier-1 embodiment of the ``determinism_faults`` check of
``repro verify`` (the CI ``verify-smoke`` gate): two independent runs of
the same seeded scenario must hash identically, and hypothesis replays
randomly seeded event streams end to end.
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultConfig
from repro.faults.scenario import ScenarioConfig, run_fault_scenario


def _chaos_config(workload_seed: int, fault_seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        building_blocks=2,
        nodes_per_bb=2,
        duration_days=0.25,
        seed=workload_seed,
        arrival_rate_per_hour=6.0,
        initial_vms=30,
        scrape_interval_s=1800.0,
        drs_interval_s=3600.0,
        faults=FaultConfig(
            seed=fault_seed,
            host_failure_rate_per_day=24.0,
            migration_abort_fraction=0.3,
            scrape_gap_probability=0.05,
            stale_node_probability=0.05,
            evac_backoff_base_s=15.0,
        ),
    )


def _report_sha256(config: ScenarioConfig) -> str:
    payload = run_fault_scenario(config).fault_report.to_json()
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.mark.parametrize("seed", [7, 23])
def test_same_seed_hashes_identically(seed):
    config = _chaos_config(seed, seed)
    assert _report_sha256(config) == _report_sha256(config)


def test_different_fault_seed_changes_the_report():
    base = run_fault_scenario(_chaos_config(7, 1)).fault_report
    other = run_fault_scenario(_chaos_config(7, 2)).fault_report
    assert base.to_json() != other.to_json()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_property_seeded_replay_is_identical(seed):
    """Any seed pair replays to the same counters AND the same report."""
    config = _chaos_config(seed % 50, seed)
    first = run_fault_scenario(config)
    second = run_fault_scenario(config)
    assert first.fault_report.to_json() == second.fault_report.to_json()
    assert first.created == second.created
    assert first.deleted == second.deleted
    assert first.rejected == second.rejected
    assert first.drs_migrations == second.drs_migrations
    assert first.events_processed == second.events_processed
