"""Tests for the storage-fault layer (`repro.iofaults`) and torture harness.

Covers the FaultSpec/IoFaultError contracts, every fault kind's observable
behaviour on the fake disk (including the power-loss model: lying fsyncs,
torn renames, rollback on power cut), the named-IO-point routing of the
journal and report writers, the durability torture harness itself (ok,
byte-stable, path-free), and the hypothesis properties from the issue:
journal recovery under EIO-at-any-read-offset and
short-write-at-any-append either replays a verified prefix or raises a
structured IoFaultError — never a raw traceback, never a torn artifact
that later parses.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.iofaults import (
    FAULT_KINDS,
    ARTIFACTS,
    FaultSpec,
    FaultyIO,
    IoFaultError,
    RealIO,
    TortureConfig,
    active_io,
    atomic_write_bytes,
    inject,
    run_torture,
)
from repro.recovery.journal import (
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)

RECORDS = [
    {"t": "op", "i": 0, "op": "create", "vm": "a", "host": "bb-1"},
    {"t": "claim", "i": 1, "vm": "b", "amounts": {"vcpus": 4.0}},
    {"t": "op", "i": 2, "op": "delete", "vm": "a"},
]


def _write_journal(path, records, io=None, durability="fsync"):
    writer = JournalWriter(path, durability=durability, io=io)
    try:
        for record in records:
            writer.append(record)
    finally:
        writer.close()


# -- FaultSpec / IoFaultError contracts -------------------------------------------


class TestSpecs:
    def test_fault_kinds_are_closed_set(self):
        assert FaultSpec(point="journal.append", kind="enospc").kind == "enospc"
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="journal.append", kind="disk-on-fire")
        with pytest.raises(ValueError, match="op_index"):
            FaultSpec(point="journal.append", op_index=-1)

    def test_error_is_oserror_with_structured_fields(self):
        io = FaultyIO([FaultSpec(point="p.write", kind="enospc")])
        handle = io.open_write("/dev/null", point="p.open")
        with pytest.raises(IoFaultError) as err:
            io.write(handle, b"x", point="p.write")
        io.close(handle)
        exc = err.value
        assert isinstance(exc, OSError)
        assert exc.point == "p.write"
        assert exc.kind == "enospc"
        assert exc.injected is True
        assert "injected enospc at IO point 'p.write'" in str(exc)

    def test_real_oserror_is_wrapped_not_injected(self):
        with pytest.raises(IoFaultError) as err:
            RealIO().read_bytes("/no/such/file/anywhere", point="golden.read")
        assert err.value.injected is False
        assert err.value.kind == "enoent"
        assert err.value.point == "golden.read"

    def test_spec_round_trips_to_dict(self):
        spec = FaultSpec(point="journal.append", kind="short-write", at_byte=3)
        assert spec.to_dict() == {
            "point": "journal.append",
            "op_index": 0,
            "kind": "short-write",
            "at_byte": 3,
        }


# -- fault behaviours on the fake disk --------------------------------------------


class TestFaultyIO:
    def test_unmatched_points_pass_through(self, tmp_path):
        io = FaultyIO([FaultSpec(point="other.write", kind="eio-write")])
        _write_journal(tmp_path / "j.wal", RECORDS, io=io)
        scan = read_journal(tmp_path / "j.wal")
        assert [r for _, r in scan.records] == RECORDS
        assert io.fired == []

    def test_op_index_counts_per_point(self, tmp_path):
        io = FaultyIO([FaultSpec(point="journal.append", op_index=2,
                                 kind="eio-write")])
        writer = JournalWriter(tmp_path / "j.wal", io=io)
        writer.append(RECORDS[0])
        writer.append(RECORDS[1])
        with pytest.raises(IoFaultError):
            writer.append(RECORDS[2])
        writer.close()
        assert io.fired == ["eio-write@journal.append"]
        # The two acknowledged records survived; the failed one left no
        # trace a reader would mistake for a frame.
        scan = read_journal(tmp_path / "j.wal")
        assert [r for _, r in scan.records] == RECORDS[:2]

    def test_short_write_leaves_torn_tail_not_corruption(self, tmp_path):
        io = FaultyIO([FaultSpec(point="journal.append", op_index=1,
                                 kind="short-write", at_byte=5)])
        writer = JournalWriter(tmp_path / "j.wal", io=io)
        writer.append(RECORDS[0])
        with pytest.raises(IoFaultError, match="short-write"):
            writer.append(RECORDS[1])
        writer.close()
        scan = read_journal(tmp_path / "j.wal")
        assert scan.torn
        assert [r for _, r in scan.records] == RECORDS[:1]
        truncate_torn_tail(tmp_path / "j.wal", scan)
        assert not read_journal(tmp_path / "j.wal").torn

    def test_fsync_lie_loses_acked_tail_on_power_cut(self, tmp_path):
        # Every fsync after the first lie keeps lying: a write cache that
        # ignores FLUSH does not recover honesty at close().
        io = FaultyIO([FaultSpec(point="journal.fsync", op_index=2,
                                 kind="fsync-lie")])
        _write_journal(tmp_path / "j.wal", RECORDS, io=io)
        assert io.fired == ["fsync-lie@journal.fsync"]
        io.power_cut()
        scan = read_journal(tmp_path / "j.wal")
        # op_index 0 is the header fsync; record 0 hardened at op 1; the
        # lie ate records 1 and 2 even though append() acknowledged them.
        assert [r for _, r in scan.records] == RECORDS[:1]
        # The surviving file is a clean journal, not a corrupt one: a
        # fresh writer appends where the durable prefix ends.
        _write_journal(tmp_path / "j.wal", [RECORDS[2]])
        scan = read_journal(tmp_path / "j.wal")
        assert [r for _, r in scan.records] == [RECORDS[0], RECORDS[2]]

    def test_flush_durability_survives_process_death_only(self, tmp_path):
        io = FaultyIO()
        _write_journal(tmp_path / "j.wal", RECORDS, io=io, durability="flush")
        assert io.counts.get("journal.flush", 0) > 0
        assert "journal.fsync" not in io.counts
        # Process death: everything flushed is on disk ...
        assert [r for _, r in read_journal(tmp_path / "j.wal").records] == RECORDS
        # ... but power loss eats it all: nothing was ever fsynced.
        io.power_cut()
        assert read_journal(tmp_path / "j.wal").valid_end == 0

    def test_rename_lost_rolls_back_to_old_bytes(self, tmp_path):
        target = tmp_path / "report.json"
        atomic_write_bytes(target, b"old\n", points="report")
        io = FaultyIO([FaultSpec(point="report.rename", kind="rename-lost")])
        atomic_write_bytes(target, b"new\n", points="report", io=io)
        assert target.read_bytes() == b"new\n"
        io.power_cut()
        assert target.read_bytes() == b"old\n"

    def test_enospc_on_write_leaves_old_artifact_and_no_temp(self, tmp_path):
        target = tmp_path / "report.json"
        atomic_write_bytes(target, b"old\n", points="report")
        io = FaultyIO([FaultSpec(point="report.write", op_index=1,
                                 kind="enospc")])
        with pytest.raises(IoFaultError, match="enospc"):
            atomic_write_bytes(target, b"new\n", points="report", io=io)
        assert target.read_bytes() == b"old\n"
        assert list(tmp_path.iterdir()) == [target]

    def test_power_cut_reports_affected_paths(self, tmp_path):
        io = FaultyIO([FaultSpec(point="journal.fsync", op_index=1,
                                 kind="fsync-lie")])
        _write_journal(tmp_path / "j.wal", RECORDS, io=io)
        affected = io.power_cut()
        assert str(tmp_path / "j.wal") in affected


# -- ambient injection ------------------------------------------------------------


class TestInjection:
    def test_active_io_defaults_to_real_and_scopes_to_context(self):
        baseline = active_io()
        faulty = FaultyIO()
        with inject(faulty):
            assert active_io() is faulty
        assert active_io() is baseline

    def test_report_writer_routes_through_named_points(self, tmp_path):
        from repro.reporting import write_report
        from repro.verify.goldens import read_golden_text, write_golden_text

        io = FaultyIO()
        with inject(io):
            write_report(_Toy(), tmp_path / "r.json")
        for point in ("report.write", "report.fsync",
                      "report.rename", "report.dirsync"):
            assert io.counts.get(point, 0) >= 1, point
        golden = tmp_path / "trace.golden.gz"
        write_golden_text(golden, "trace\n")
        faulty = FaultyIO([FaultSpec(point="golden.read", kind="eio-read")])
        with inject(faulty), pytest.raises(IoFaultError) as err:
            read_golden_text(golden)
        assert err.value.point == "golden.read"
        assert err.value.kind == "eio-read"


class _Toy:
    def to_dict(self):
        return {"v": 1}


# -- torture harness --------------------------------------------------------------


class TestTorture:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="schedules"):
            TortureConfig(schedules=0)
        with pytest.raises(ValueError, match="durability"):
            TortureConfig(durability="wishful")

    def test_default_schedule_is_green_and_byte_stable(self):
        config = TortureConfig(seeds=(7,), schedules=10)
        first = run_torture(config)
        second = run_torture(config)
        assert first.ok, first.render()
        assert first.canonical_bytes() == second.canonical_bytes()
        payload = first.canonical_json()
        assert "/tmp" not in payload
        assert "repro-torture" not in payload
        # Every artifact family and at least one fired fault is exercised.
        assert {c.artifact for c in first.cases} == set(ARTIFACTS)
        assert any(c.fired for c in first.cases)
        parsed = json.loads(payload)
        assert set(parsed["outcomes"]) <= {
            "recovered-identical", "intact-old", "intact-new",
            "intact-prefix", "structured-error",
        }

    def test_kinds_catalogue_is_what_the_docs_say(self):
        assert FAULT_KINDS == (
            "enospc", "eio-read", "eio-write", "short-write",
            "fsync-fail", "fsync-lie", "rename-fail", "rename-lost",
        )


# -- the headline properties ------------------------------------------------------


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_journal_read_under_eio_at_any_offset(data, tmp_path):
    """EIO on the recovery read is always a structured IoFaultError."""
    path = tmp_path / f"j{data.draw(st.integers(0, 10**6), label='id')}.wal"
    _write_journal(path, RECORDS)
    io = FaultyIO([FaultSpec(point="journal.read", kind="eio-read")])
    with pytest.raises(IoFaultError) as err:
        read_journal(path, io=io)
    assert err.value.kind == "eio-read"
    # The file itself is untouched; a fault-free retry sees everything.
    assert [r for _, r in read_journal(path).records] == RECORDS


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_append_faults_leave_verified_prefix_or_structured_error(data, tmp_path):
    """Any write fault at any append offset: the journal that remains is a
    verified prefix of what was acknowledged plus at most a torn tail —
    recovery never sees invented records and never raises raw."""
    op_index = data.draw(st.integers(min_value=0, max_value=6), label="op")
    kind = data.draw(
        st.sampled_from(("enospc", "eio-write", "short-write")), label="kind"
    )
    at_byte = (
        data.draw(st.integers(min_value=1, max_value=16), label="cut")
        if kind == "short-write"
        else None
    )
    path = tmp_path / f"j{op_index}-{kind}-{at_byte}.wal"
    records = [{"t": "op", "i": i, "v": "x" * (i % 7)} for i in range(6)]
    io = FaultyIO([FaultSpec(point="journal.append", op_index=op_index,
                             kind=kind, at_byte=at_byte)])
    acked: list[dict] = []
    writer = JournalWriter(path, io=io)
    try:
        for record in records:
            writer.append(record)
            acked.append(record)
    except OSError as exc:
        assert isinstance(exc, IoFaultError), repr(exc)
    finally:
        writer.close()
    scan = read_journal(path)
    recovered = [r for _, r in scan.records]
    assert recovered[: len(acked)] == acked
    assert recovered == records[: len(recovered)]
    if scan.torn:
        truncate_torn_tail(path, scan)
        assert not read_journal(path).torn
