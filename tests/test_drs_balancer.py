"""Tests for the DRS load balancer."""

import pytest

from repro.drs.balancer import DrsBalancer, DrsConfig
from repro.infrastructure.flavors import Flavor
from repro.infrastructure.vm import VM
from tests.conftest import make_bb


def add_vm(bb, node_index, vm_id, vcpus=8, ram_gib=16):
    node = list(bb.iter_nodes())[node_index]
    node.add_vm(VM(vm_id=vm_id, flavor=Flavor(f"f-{vm_id}", vcpus=vcpus, ram_gib=ram_gib)))


class TestImbalanceMetric:
    def test_balanced_cluster_is_zero(self):
        bb = make_bb(nodes=3)
        for i in range(3):
            add_vm(bb, i, f"v{i}", vcpus=8)
        assert DrsBalancer().imbalance(bb) == pytest.approx(0.0)

    def test_single_node_cluster_is_zero(self):
        bb = make_bb(nodes=1)
        add_vm(bb, 0, "v0")
        assert DrsBalancer().imbalance(bb) == 0.0

    def test_skewed_cluster_positive(self):
        bb = make_bb(nodes=2)
        add_vm(bb, 0, "v0", vcpus=32)
        assert DrsBalancer().imbalance(bb) > 0.2

    def test_custom_load_fn(self):
        bb = make_bb(nodes=2)
        add_vm(bb, 0, "v0", vcpus=32)
        # With a load model that says the VM is idle, the cluster is balanced.
        assert DrsBalancer().imbalance(bb, load_fn=lambda vm: 0.0) == 0.0


class TestBalancing:
    def test_migrates_from_hot_to_cold(self):
        bb = make_bb(nodes=2)
        for i in range(4):
            add_vm(bb, 0, f"v{i}", vcpus=16)
        balancer = DrsBalancer()
        before = balancer.imbalance(bb)
        migrations = balancer.run(bb)
        assert migrations
        assert balancer.imbalance(bb) < before
        nodes = list(bb.iter_nodes())
        assert nodes[1].vm_count > 0

    def test_migration_records_are_consistent(self):
        bb = make_bb(nodes=2)
        for i in range(4):
            add_vm(bb, 0, f"v{i}", vcpus=16)
        migrations = DrsBalancer().run(bb)
        for m in migrations:
            assert m.source_node != m.target_node
            assert m.improvement > 0
        # Migration counters incremented on the VMs.
        moved = {m.vm_id for m in migrations}
        for vm in bb.vms():
            assert vm.migrations == (1 if vm.vm_id in moved else 0)

    def test_no_moves_below_threshold(self):
        bb = make_bb(nodes=2)
        add_vm(bb, 0, "v0", vcpus=2)  # tiny skew
        config = DrsConfig(imbalance_threshold=0.5)
        assert DrsBalancer(config=config).run(bb) == []

    def test_max_moves_cap(self):
        bb = make_bb(nodes=2)
        for i in range(12):
            add_vm(bb, 0, f"v{i}", vcpus=8)
        config = DrsConfig(max_moves_per_run=2, imbalance_threshold=0.0)
        assert len(DrsBalancer(config=config).run(bb)) <= 2

    def test_respects_capacity_on_target(self):
        bb = make_bb(nodes=2, cpu_ratio=1.0)
        # Fill node 1 completely so nothing can move there.
        add_vm(bb, 1, "big", vcpus=64)
        for i in range(3):
            add_vm(bb, 0, f"v{i}", vcpus=20)
        migrations = DrsBalancer().run(bb)
        assert all(m.target_node != f"{bb.bb_id}-n1" for m in migrations)

    def test_prefers_light_vms(self):
        """§3.2: heavy VMs are only moved when nothing lighter works."""
        bb = make_bb(nodes=2)
        add_vm(bb, 0, "heavy", vcpus=48)
        for i in range(6):
            add_vm(bb, 0, f"light{i}", vcpus=8)
        config = DrsConfig(heavy_vm_cores=32.0, imbalance_threshold=0.01)
        migrations = DrsBalancer(config=config).run(bb)
        assert migrations
        assert all(m.vm_id != "heavy" for m in migrations)

    def test_empty_cluster_noop(self):
        assert DrsBalancer().run(make_bb(nodes=3)) == []

    def test_converges_to_threshold(self):
        bb = make_bb(nodes=4)
        for i in range(16):
            add_vm(bb, 0, f"v{i}", vcpus=8)
        balancer = DrsBalancer(config=DrsConfig(max_moves_per_run=50))
        balancer.run(bb)
        assert balancer.imbalance(bb) <= 0.2
