"""Tests for the lifetime mixture models (Fig 15 shape)."""

import numpy as np
import pytest

from repro.workloads.lifetime import (
    DAY,
    HOUR,
    LIFETIME_MODELS,
    LifetimeModel,
    YEAR,
    sample_lifetime,
)


@pytest.fixture(scope="module")
def big_rng():
    return np.random.default_rng(11)


def test_weights_must_sum_to_one():
    with pytest.raises(ValueError, match="sum to 1"):
        LifetimeModel(ephemeral=(0.5, HOUR, 1.0), project=(0.5, DAY, 1.0),
                      persistent=(0.5, YEAR, 1.0))


def test_floor_at_one_minute(big_rng):
    model = LifetimeModel(
        ephemeral=(1.0, 61.0, 2.0), project=(0.0, DAY, 1.0), persistent=(0.0, YEAR, 1.0)
    )
    samples = model.sample(big_rng, 500)
    assert samples.min() >= 60.0


def test_span_minutes_to_years(big_rng):
    """Fig 15: observed lifetimes range from few minutes to multiple years."""
    samples = LIFETIME_MODELS["general"].sample(big_rng, 20_000)
    assert samples.min() < HOUR
    assert samples.max() > 2 * YEAR


def test_hana_skews_long(big_rng):
    hana = LIFETIME_MODELS["hana_db"].sample(big_rng, 5000)
    cicd = LIFETIME_MODELS["cicd"].sample(big_rng, 5000)
    assert np.median(hana) > 10 * np.median(cicd)


def test_every_class_has_short_and_long_mass(big_rng):
    """Fig 15: significant variation *within* each category — even HANA has
    short-lived instances and even CI/CD has year-long ones."""
    for name, model in LIFETIME_MODELS.items():
        samples = model.sample(big_rng, 20_000)
        assert np.mean(samples < DAY) > 0.01, name
        assert np.mean(samples > 30 * DAY) > 0.05, name


def test_sample_lifetime_unknown_profile_falls_back(big_rng):
    value = sample_lifetime("no-such-profile", big_rng)
    assert value >= 60.0


def test_sample_lifetime_returns_scalar(big_rng):
    assert isinstance(sample_lifetime("hana_db", big_rng), float)
