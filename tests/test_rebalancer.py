"""Tests for the continuous rebalancing driver."""

import pytest

from repro.infrastructure.flavors import Flavor
from repro.infrastructure.topology import build_region
from repro.infrastructure.vm import VM
from repro.rebalancer import RebalanceDriver
from repro.scheduler.placement import MEMORY_MB, VCPU, PlacementService
from tests.conftest import build_tiny_region_spec


def _imbalanced_region():
    """All load stacked on one node of one BB; placement kept in sync."""
    region = build_region(build_tiny_region_spec())
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    bb = region.find_building_block("dc1-gp-00")
    node = list(bb.iter_nodes())[0]
    for i in range(10):
        vm = VM(vm_id=f"v{i}", flavor=Flavor(f"f{i}", vcpus=16, ram_gib=32))
        node.add_vm(vm)
        placement.claim(vm.vm_id, bb.bb_id, vm.requested())
    return region, placement


def test_pass_reduces_dc_imbalance():
    region, placement = _imbalanced_region()
    driver = RebalanceDriver(region, placement)
    report = driver.run_pass("dc1")
    assert report.imbalance_after < report.imbalance_before
    assert report.intra_bb_migrations + report.cross_bb_migrations > 0


def test_placement_stays_consistent_across_cross_bb_moves():
    region, placement = _imbalanced_region()
    driver = RebalanceDriver(region, placement)
    driver.run_until_stable("dc1")
    for bb in region.iter_building_blocks():
        provider = placement.provider(bb.bb_id)
        resident = bb.vms()
        assert provider.used[VCPU] == pytest.approx(
            sum(vm.flavor.vcpus for vm in resident)
        )
        assert provider.used[MEMORY_MB] == pytest.approx(
            sum(vm.flavor.ram_mb for vm in resident)
        )


def test_run_until_stable_converges():
    region, placement = _imbalanced_region()
    driver = RebalanceDriver(region, placement)
    report = driver.run_until_stable("dc1", max_passes=6)
    assert report.passes <= 6
    assert report.imbalance_after <= report.imbalance_before
    # Further passes would not help: the DC is near balanced.
    assert driver.dc_imbalance("dc1") < 0.25


def test_history_records_moves():
    region, placement = _imbalanced_region()
    driver = RebalanceDriver(region, placement)
    report = driver.run_pass("dc1")
    assert len(report.history) == (
        report.intra_bb_migrations + report.cross_bb_migrations
    )
    for line in report.history:
        assert "->" in line


def test_balanced_dc_is_noop():
    region = build_region(build_tiny_region_spec())
    driver = RebalanceDriver(region)
    report = driver.run_pass("dc1")
    assert report.intra_bb_migrations == 0
    assert report.cross_bb_migrations == 0
    assert report.imbalance_before == 0.0


def test_unknown_dc_is_noop():
    region = build_region(build_tiny_region_spec())
    driver = RebalanceDriver(region)
    report = driver.run_pass("nowhere")
    assert report.improvement == 0.0


def test_works_without_placement_service():
    region = build_region(build_tiny_region_spec())
    bb = region.find_building_block("dc1-gp-00")
    node = list(bb.iter_nodes())[0]
    for i in range(8):
        node.add_vm(VM(vm_id=f"v{i}", flavor=Flavor(f"f{i}", vcpus=16, ram_gib=32)))
    driver = RebalanceDriver(region, placement=None)
    report = driver.run_pass("dc1")
    assert report.imbalance_after < report.imbalance_before
