"""Tests for the statistical-multiplexing analysis."""

import numpy as np
import pytest

from repro.core.oversubscription import (
    multiplexing_report,
    node_multiplexing_gain,
    vm_multiplexing_gain,
)


def test_vm_gain_exceeds_one(small_dataset):
    """Desynchronised VM peaks: aggregate peak < sum of individual peaks —
    the statistical basis for the §7 overcommit headroom."""
    gain = vm_multiplexing_gain(small_dataset)
    assert gain.series_count > 5
    assert gain.gain > 1.2
    assert gain.peak_of_sum <= gain.sum_of_peaks


def test_node_gain_per_bb(small_dataset):
    bb = small_dataset.building_blocks()[0]
    gain = node_multiplexing_gain(small_dataset, bb)
    assert gain.scope == bb
    assert gain.gain >= 1.0


def test_report_covers_bbs_sorted(small_dataset):
    report = multiplexing_report(small_dataset)
    assert len(report) == len(small_dataset.building_blocks())
    gains = np.asarray(report["gain"], dtype=float)
    assert np.all(np.diff(gains) <= 1e-9)
    assert np.all(gains >= 1.0)


def test_unknown_scopes_raise(small_dataset):
    with pytest.raises(ValueError):
        node_multiplexing_gain(small_dataset, "ghost-bb")
    with pytest.raises(ValueError):
        vm_multiplexing_gain(small_dataset, node_id="ghost-node")


def test_gain_of_zero_peak_is_one():
    from repro.core.oversubscription import MultiplexingGain

    gain = MultiplexingGain(scope="x", series_count=0, sum_of_peaks=0.0,
                            peak_of_sum=0.0)
    assert gain.gain == 1.0
