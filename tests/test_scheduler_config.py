"""Tests for SchedulerConfig and the consolidated scheduler API.

Covers the config value object itself, the deprecated keyword shims on
``FilterScheduler``, the shared stats vocabulary, and — most importantly —
placement equivalence: every (use_index, track_filter_counts) combination
must produce byte-identical placements for the same request stream.
"""

import pytest

from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import build_region
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.filters import (
    AvailabilityZoneFilter,
    ComputeFilter,
    RetryFilter,
    default_filters,
)
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import PlacementService
from repro.scheduler.request import RequestSpec
from repro.scheduler.stats import (
    PLACEMENT_STAT_KEYS,
    SCHEDULER_STAT_KEYS,
    normalize_stats,
    stats_of,
)
from repro.scheduler.weighers import RAMWeigher

from tests.conftest import build_tiny_region_spec


def _stream(catalog, n=40):
    """A deterministic mixed request stream for the tiny region."""
    names = ("g_c1_m1", "g_c4_m16", "g_c16_m64", "h_c32_m512", "h_c96_m3072")
    stream = []
    for i in range(n):
        kwargs = {}
        if i % 7 == 3:
            kwargs["availability_zone"] = "az1" if i % 2 else "az2"
        stream.append(
            RequestSpec(
                vm_id=f"vm-{i:03d}", flavor=catalog.get(names[i % len(names)]), **kwargs
            )
        )
    return stream


def _replay(config, stream):
    region = build_region(build_tiny_region_spec())
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    scheduler = FilterScheduler(region, placement, config)
    placements = {}
    for spec in stream:
        try:
            placements[spec.vm_id] = scheduler.schedule(spec).host_id
        except NoValidHost:
            placements[spec.vm_id] = None
    return placements, scheduler, placement


class TestConfigObject:
    def test_defaults(self):
        config = SchedulerConfig()
        assert config.use_index
        assert config.track_filter_counts
        assert config.max_attempts == 3
        assert config.alternates == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_attempts=0)
        with pytest.raises(ValueError):
            SchedulerConfig(alternates=-1)

    def test_fast_disables_trace_only(self):
        config = SchedulerConfig(max_attempts=5)
        fast = config.fast()
        assert not fast.track_filter_counts
        assert fast.max_attempts == 5
        assert config.track_filter_counts  # original untouched (frozen)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SchedulerConfig().use_index = False


class TestDeprecatedShims:
    @pytest.fixture
    def region_placement(self, tiny_region):
        placement = PlacementService()
        for bb in tiny_region.iter_building_blocks():
            placement.register_building_block(bb)
        return tiny_region, placement

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 2},
            {"alternates": 1},
            {"weighers": [RAMWeigher(1.0)]},
            {"filters": [ComputeFilter()]},
        ],
    )
    def test_legacy_kwargs_warn_and_apply(self, region_placement, kwargs):
        region, placement = region_placement
        with pytest.warns(DeprecationWarning, match="pass a SchedulerConfig"):
            scheduler = FilterScheduler(region, placement, **kwargs)
        for key, value in kwargs.items():
            assert getattr(scheduler.config, key) == value

    def test_legacy_positional_filter_list_warns(self, region_placement):
        region, placement = region_placement
        chain = [ComputeFilter()]
        with pytest.warns(DeprecationWarning):
            scheduler = FilterScheduler(region, placement, chain)
        assert scheduler.filters == chain

    def test_config_plus_legacy_kwarg_is_an_error(self, region_placement):
        region, placement = region_placement
        with pytest.raises(TypeError, match="not both"):
            FilterScheduler(
                region, placement, SchedulerConfig(), max_attempts=2
            )


class TestPlacementEquivalence:
    """All hot-path toggles must yield identical placements."""

    @pytest.mark.parametrize("use_index", [True, False])
    @pytest.mark.parametrize("track", [True, False])
    def test_matches_reference_combination(self, use_index, track):
        catalog = default_catalog()
        stream = _stream(catalog)
        reference, _, _ = _replay(
            SchedulerConfig(use_index=False, track_filter_counts=True), stream
        )
        got, _, _ = _replay(
            SchedulerConfig(use_index=use_index, track_filter_counts=track), stream
        )
        assert got == reference

    def test_fast_mode_drops_trace_but_counts_survivors(self):
        catalog = default_catalog()
        _, scheduler, _ = _replay(SchedulerConfig().fast(), _stream(catalog, n=5))
        result = scheduler.schedule(
            RequestSpec(vm_id="probe", flavor=catalog.get("g_c1_m1"))
        )
        assert set(result.filtered_counts) == {"initial", "survivors"}


class TestFilterRelevance:
    def test_az_filter_irrelevant_without_constraint(self, catalog):
        flt = AvailabilityZoneFilter()
        spec = RequestSpec(vm_id="v", flavor=catalog.get("g_c1_m1"))
        assert not flt.relevant(spec)
        assert flt.relevant(
            RequestSpec(
                vm_id="v", flavor=catalog.get("g_c1_m1"), availability_zone="az1"
            )
        )

    def test_retry_filter_relevant_only_after_exclusions(self, catalog):
        flt = RetryFilter()
        spec = RequestSpec(vm_id="v", flavor=catalog.get("g_c1_m1"))
        assert not flt.relevant(spec)
        assert flt.relevant(spec.excluding("some-host"))

    def test_default_filters_are_cost_ordered_stable(self):
        chain = default_filters()
        costs = [getattr(flt, "cost", 1) for flt in chain]
        assert all(isinstance(c, (int, float)) for c in costs)


class TestSharedStats:
    def test_scheduler_snapshot_has_canonical_keys(self):
        catalog = default_catalog()
        _, scheduler, _ = _replay(SchedulerConfig(), _stream(catalog, n=10))
        snapshot = scheduler.stats_snapshot()
        assert set(SCHEDULER_STAT_KEYS) <= set(snapshot)
        assert snapshot["requests"] == 10
        assert snapshot["placed"] + snapshot["failed"] == 10

    def test_placement_stats_canonical(self):
        catalog = default_catalog()
        _, _, placement = _replay(SchedulerConfig(), _stream(catalog, n=10))
        stats = placement.stats()
        assert set(PLACEMENT_STAT_KEYS) <= set(stats)
        assert stats["claims"] >= stats["moves"]

    def test_stats_of_accepts_both_shapes(self):
        catalog = default_catalog()
        _, scheduler, placement = _replay(SchedulerConfig(), _stream(catalog, n=5))
        assert stats_of(scheduler)["requests"] == 5  # mapping attribute
        assert stats_of(placement)["claims"] >= 1  # method

    def test_normalize_folds_legacy_spellings(self):
        out = normalize_stats(
            {"failures": 2, "retry": 1, "placements": 3}, SCHEDULER_STAT_KEYS
        )
        assert out["failed"] == 2
        assert out["retries"] == 1
        assert out["placed"] == 3
        assert out["requests"] == 0
