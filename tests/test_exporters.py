"""Tests for the vROps and Nova exporters."""

import pytest

from repro.infrastructure.flavors import Flavor
from repro.infrastructure.vm import VM
from repro.telemetry.exporters import NodeUsage, NovaExporter, VMUsage, VropsExporter
from repro.telemetry.store import MetricStore
from tests.conftest import make_node


@pytest.fixture
def usage() -> NodeUsage:
    return NodeUsage(
        cpu_used_fraction=0.5,
        memory_used_fraction=0.25,
        network_tx_kbps=1000.0,
        network_rx_kbps=800.0,
        disk_used_gb=100.0,
        cpu_ready_ms=30_000.0,
        cpu_contention_fraction=0.1,
    )


class TestVropsExporter:
    def test_node_scrape_emits_all_host_metrics(self, usage):
        node = make_node("n1")
        samples = VropsExporter().scrape_node(node, usage, timestamp=60.0)
        names = {s.metric for s in samples}
        assert names == {
            "vrops_hostsystem_cpu_core_utilization_percentage",
            "vrops_hostsystem_cpu_contention_percentage",
            "vrops_hostsystem_cpu_ready_milliseconds",
            "vrops_hostsystem_memory_usage_percentage",
            "vrops_hostsystem_network_bytes_tx_kbps",
            "vrops_hostsystem_network_bytes_rx_kbps",
            "vrops_hostsystem_diskspace_usage_gigabytes",
        }

    def test_fractions_become_percentages(self, usage):
        node = make_node("n1")
        samples = {
            s.metric: s.value
            for s in VropsExporter().scrape_node(node, usage, 0.0)
        }
        assert samples["vrops_hostsystem_cpu_core_utilization_percentage"] == 50.0
        assert samples["vrops_hostsystem_cpu_contention_percentage"] == pytest.approx(10.0)
        assert samples["vrops_hostsystem_cpu_ready_milliseconds"] == 30_000.0

    def test_labels_carry_topology(self, usage):
        node = make_node("n1")
        node.building_block = "bb1"
        node.datacenter = "dc1"
        node.az = "az1"
        sample = VropsExporter().scrape_node(node, usage, 0.0)[0]
        labels = dict(sample.labels)
        assert labels == {
            "hostsystem": "n1",
            "building_block": "bb1",
            "datacenter": "dc1",
            "availability_zone": "az1",
        }

    def test_vm_scrape(self):
        node = make_node("n1")
        samples = VropsExporter().scrape_vm(
            "vm-1", node, VMUsage(cpu_usage_ratio=0.4, memory_consumed_ratio=0.9), 5.0
        )
        by_name = {s.metric: s for s in samples}
        assert by_name["vrops_virtualmachine_cpu_usage_ratio"].value == 0.4
        assert dict(by_name["vrops_virtualmachine_memory_consumed_ratio"].labels)[
            "virtualmachine"
        ] == "vm-1"


class TestNovaExporter:
    def test_region_scrape_gauges(self, tiny_region):
        bb = tiny_region.find_building_block("dc1-gp-00")
        node = next(bb.iter_nodes())
        node.add_vm(VM(vm_id="v1", flavor=Flavor("f", vcpus=8, ram_gib=32)))

        samples = NovaExporter().scrape_region(tiny_region, 0.0)
        store = MetricStore()
        store.ingest(samples)

        used = store.query(
            "openstack_compute_nodes_vcpus_used_gauge",
            {
                "compute_host": "dc1-gp-00",
                "datacenter": "dc1",
                "availability_zone": "az1",
            },
        )
        assert used.values[0] == 8.0

        total = store.query(
            "openstack_compute_instances_total", {"region": "test-region"}
        )
        assert total.values[0] == 1.0

    def test_vcpu_gauge_reflects_overcommit(self, tiny_region):
        samples = NovaExporter().scrape_region(tiny_region, 0.0)
        by_host = {
            dict(s.labels).get("compute_host"): s.value
            for s in samples
            if s.metric == "openstack_compute_nodes_vcpus_gauge"
        }
        # dc1-gp-00: 4 nodes x 64 cores x ratio 4.0.
        assert by_host["dc1-gp-00"] == 4 * 64 * 4.0
        # HANA BB: 3 nodes x 224 cores x ratio 2.0.
        assert by_host["dc1-hana-00"] == 3 * 224 * 2.0
