"""Tests for advisory-mode DRS recommendations."""

from repro.drs.balancer import DrsConfig
from repro.drs.recommendations import recommend_moves
from repro.infrastructure.flavors import Flavor
from repro.infrastructure.vm import VM
from tests.conftest import make_bb


def _skewed_bb():
    bb = make_bb(nodes=2)
    node0 = list(bb.iter_nodes())[0]
    for i in range(4):
        node0.add_vm(VM(vm_id=f"v{i}", flavor=Flavor(f"f{i}", vcpus=16, ram_gib=32)))
    return bb


def test_recommendations_do_not_mutate_cluster():
    bb = _skewed_bb()
    before = {n.node_id: set(n.vms) for n in bb.iter_nodes()}
    recs = recommend_moves(bb)
    assert recs
    after = {n.node_id: set(n.vms) for n in bb.iter_nodes()}
    assert before == after
    for vm in bb.vms():
        assert vm.migrations == 0


def test_priorities_in_range_and_ordered():
    recs = recommend_moves(_skewed_bb())
    assert all(1 <= r.priority <= 5 for r in recs)
    # The largest improvement gets the most urgent priority.
    best = max(recs, key=lambda r: r.improvement)
    assert best.priority == 1


def test_balanced_cluster_no_recommendations():
    bb = make_bb(nodes=2)
    assert recommend_moves(bb) == []


def test_config_threshold_respected():
    bb = _skewed_bb()
    config = DrsConfig(imbalance_threshold=10.0)
    assert recommend_moves(bb, config=config) == []


def test_custom_load_fn_used():
    bb = _skewed_bb()
    assert recommend_moves(bb, load_fn=lambda vm: 0.0) == []
