"""Tests for the incremental HostStateIndex.

The index's contract is equivalence: after ``refresh()`` every cached
state matches a from-scratch ``HostState.from_building_block`` rebuild,
and the free-vCPU bucket table matches one rebuilt from those states —
no matter how claims, releases, moves, rollbacks, node failures, or
VM bookkeeping interleaved since the last query.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.vm import VM
from repro.scheduler.hoststate import HostState
from repro.scheduler.index import HostStateIndex, bucket_key
from repro.scheduler.placement import AllocationError, PlacementService

_COMPARED_FIELDS = (
    "host_id",
    "az",
    "aggregate_class",
    "policy",
    "free_vcpus",
    "free_ram_mb",
    "free_disk_gb",
    "total_vcpus",
    "total_ram_mb",
    "total_disk_gb",
    "num_instances",
    "tenants",
    "enabled",
)


@pytest.fixture
def placement(tiny_region):
    placement = PlacementService()
    for bb in tiny_region.iter_building_blocks():
        placement.register_building_block(bb)
    return placement


@pytest.fixture
def index(tiny_region, placement):
    idx = HostStateIndex(tiny_region, placement)
    yield idx
    idx.close()


def assert_equivalent(index, region, placement):
    """Index states and buckets match a from-scratch rebuild."""
    index.refresh()
    states = {s.host_id: s for s in index.states()}
    expected_buckets: dict[int, set[str]] = {}
    for bb in region.iter_building_blocks():
        fresh = HostState.from_building_block(bb, placement)
        cached = states.pop(bb.bb_id)
        for field in _COMPARED_FIELDS:
            assert getattr(cached, field) == getattr(fresh, field), (
                f"{bb.bb_id}.{field}: cached {getattr(cached, field)!r} "
                f"!= fresh {getattr(fresh, field)!r}"
            )
        expected_buckets.setdefault(bucket_key(fresh.free_vcpus), set()).add(
            bb.bb_id
        )
    assert not states, f"index has stale entries: {sorted(states)}"
    actual_buckets = {k: v for k, v in index.buckets().items() if v}
    assert actual_buckets == expected_buckets


class TestBucketKey:
    def test_monotonic(self):
        keys = [bucket_key(f) for f in (0, 0.5, 1, 2, 3, 8, 100, 1e6)]
        assert keys == sorted(keys)

    def test_negative_free_maps_to_zero(self):
        assert bucket_key(-3.0) == 0

    def test_candidates_are_superset_of_feasible(self, tiny_region, placement, index):
        index.refresh()
        for demand in (0.5, 1, 7, 64, 200, 500):
            candidate_ids = {s.host_id for s in index.candidates(demand)}
            feasible = {
                s.host_id for s in index.states() if s.free_vcpus >= demand
            }
            assert feasible <= candidate_ids


class TestIncrementalMaintenance:
    def test_initial_refresh_matches_rebuild(self, tiny_region, placement, index):
        assert_equivalent(index, tiny_region, placement)

    def test_claim_updates_free_capacity_without_refresh(
        self, tiny_region, placement, index, catalog
    ):
        index.refresh()
        before = {s.host_id: s.free_vcpus for s in index.states()}
        requested = catalog.get("g_c8_m32").requested()
        placement.claim("vm-x", "dc1-gp-00", requested)
        after = {s.host_id: s.free_vcpus for s in index.states()}
        assert after["dc1-gp-00"] == before["dc1-gp-00"] - requested.vcpus

    def test_direct_node_failure_is_caught_by_refresh(
        self, tiny_region, placement, index
    ):
        index.refresh()
        bb = next(b for b in tiny_region.iter_building_blocks() if b.bb_id == "dc2-gp-00")
        for node in bb.iter_nodes():
            node.failed = True  # direct write, not via any manager
        index.refresh()
        state = next(s for s in index.states() if s.host_id == "dc2-gp-00")
        assert not state.enabled
        for node in bb.iter_nodes():
            node.failed = False
        assert_equivalent(index, tiny_region, placement)

    def test_node_vm_bookkeeping_is_caught_by_refresh(
        self, tiny_region, placement, index, catalog
    ):
        index.refresh()
        bb = next(iter(tiny_region.iter_building_blocks()))
        node = next(bb.iter_nodes())
        node.add_vm(VM(vm_id="vm-t", flavor=catalog.get("g_c2_m8"), tenant="t9"))
        index.refresh()
        state = next(s for s in index.states() if s.host_id == bb.bb_id)
        assert state.num_instances == 1
        assert "t9" in state.tenants

    def test_metadata_survives_rebuild(self, tiny_region, placement, index):
        index.refresh()
        state = index.states()[0]
        state.metadata["churn_class"] = "short"
        index.invalidate(state.host_id)
        index.refresh()
        rebuilt = next(s for s in index.states() if s.host_id == state.host_id)
        assert rebuilt.metadata["churn_class"] == "short"

    def test_remove_provider_discards_state(self, tiny_region, placement, index):
        index.refresh()
        placement.remove_provider("dc1-hana-01")
        assert all(s.host_id != "dc1-hana-01" for s in index.states())
        assert all("dc1-hana-01" not in bbs for bbs in index.buckets().values())

    def test_close_detaches_listener(self, tiny_region, placement, catalog):
        index = HostStateIndex(tiny_region, placement)
        index.refresh()
        before = {s.host_id: s.free_vcpus for s in index.states()}
        index.close()
        placement.claim("vm-y", "dc1-gp-00", catalog.get("g_c8_m32").requested())
        after = {s.host_id: s.free_vcpus for s in index.states()}
        assert after == before  # inert: no listener updates


# -- property test --------------------------------------------------------------

_FLAVORS = ("g_c1_m1", "g_c4_m16", "g_c16_m64", "g_c64_m256")

_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "claim",
                "release",
                "move",
                "rollback",
                "fail",
                "recover",
                "node_vm",
                "quarantine",
                "readmit",
            ]
        ),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_property_index_equivalent_after_random_ops(ops):
    """Randomised interleavings never desynchronise the index."""
    from tests.conftest import build_tiny_region_spec
    from repro.infrastructure.topology import build_region

    region = build_region(build_tiny_region_spec())
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    index = HostStateIndex(region, placement)
    catalog = default_catalog()
    bbs = list(region.iter_building_blocks())
    nodes = [n for bb in bbs for n in bb.iter_nodes()]
    claimed: list[str] = []

    for i, (op, a, b) in enumerate(ops):
        if op == "claim":
            vm_id = f"vm{i}"
            flavor = catalog.get(_FLAVORS[a % len(_FLAVORS)])
            try:
                placement.claim(vm_id, bbs[b % len(bbs)].bb_id, flavor.requested())
                claimed.append(vm_id)
            except AllocationError:
                pass
        elif op == "release" and claimed:
            try:
                placement.release(claimed.pop(a % len(claimed)))
            except AllocationError:
                pass
        elif op == "move" and claimed:
            try:
                placement.move(claimed[a % len(claimed)], bbs[b % len(bbs)].bb_id)
            except AllocationError:
                pass
        elif op == "rollback" and claimed:
            # A migration that aborts mid-precopy: move out, then move back.
            vm_id = claimed[a % len(claimed)]
            source = placement.allocation_for(vm_id).provider_id
            try:
                placement.move(vm_id, bbs[b % len(bbs)].bb_id)
                placement.move(vm_id, source)
            except AllocationError:
                pass
        elif op == "fail":
            nodes[a % len(nodes)].failed = True
        elif op == "recover":
            nodes[a % len(nodes)].failed = False
        elif op == "quarantine":
            nodes[a % len(nodes)].quarantined = True
        elif op == "readmit":
            nodes[a % len(nodes)].quarantined = False
        elif op == "node_vm":
            node = nodes[a % len(nodes)]
            vm_id = f"nvm{i}"
            if vm_id not in node.vms:
                node.add_vm(
                    VM(
                        vm_id=vm_id,
                        flavor=catalog.get(_FLAVORS[b % len(_FLAVORS)]),
                        tenant=f"t{b % 3}",
                    )
                )
        if i % 7 == 0:
            index.refresh()  # interleaved queries must not mask later drift

    assert_equivalent(index, region, placement)
    # Quarantine is a node-level fence outside placement's view: after any
    # interleaving, a building block whose nodes are all failed/quarantined/
    # draining must never surface as an enabled candidate.
    index.refresh()
    enabled_ids = {s.host_id for s in index.candidates(0) if s.enabled}
    for bb in bbs:
        if not any(n.healthy for n in bb.nodes.values()):
            assert bb.bb_id not in enabled_ids
        else:
            assert bb.bb_id in enabled_ids
    index.close()
