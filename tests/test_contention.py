"""Tests for CPU contention / ready-time analysis against §5.1."""

import numpy as np
import pytest

from repro.core.contention import (
    contention_daily_stats,
    contention_summary,
    contention_threshold_report,
    ready_baseline_exceedances,
    top_ready_time_nodes,
    weekday_weekend_effect,
)


class TestDailyStats:
    def test_one_row_per_day(self, small_dataset):
        stats = contention_daily_stats(small_dataset)
        assert len(stats) == 30
        assert set(stats.names) == {"day", "mean", "p95", "max"}

    def test_mean_and_p95_low(self, small_dataset):
        """Fig 9: daily mean and 95th percentile remain below the 5% mark."""
        stats = contention_daily_stats(small_dataset)
        assert float(np.max(stats["mean"])) < 5.0
        assert float(np.max(stats["p95"])) < 8.0  # small fleet → coarse p95

    def test_max_shows_severe_outliers(self, small_dataset):
        """Fig 9: several nodes exceed the 40% level."""
        stats = contention_daily_stats(small_dataset)
        assert float(np.max(stats["max"])) > 40.0

    def test_ordering_bounded_by_max(self, small_dataset):
        # Note mean <= p95 does NOT hold in general: with <5% of nodes hot,
        # the cross-node p95 can sit below the mean.  Both are <= max.
        stats = contention_daily_stats(small_dataset)
        assert np.all(np.asarray(stats["mean"]) <= np.asarray(stats["max"]) + 1e-9)
        assert np.all(np.asarray(stats["p95"]) <= np.asarray(stats["max"]) + 1e-9)


class TestSummary:
    def test_threshold_counts_consistent(self, small_dataset):
        summary = contention_summary(small_dataset)
        assert summary.node_count == small_dataset.node_count
        assert (
            summary.nodes_above_severe
            <= summary.nodes_above_moderate
            <= summary.nodes_above_strict
        )
        assert summary.nodes_above_severe >= 1

    def test_report_shares_in_unit_interval(self, small_dataset):
        report = contention_threshold_report(small_dataset)
        for key, value in report.items():
            if key.startswith("share"):
                assert 0.0 <= value <= 1.0
        # Only a small minority of nodes is contended at all (§5.1).
        assert report["share_nodes_above_10pct"] < 0.25


class TestReadyTime:
    def test_top_n_ranked_by_peak(self, small_dataset):
        top = top_ready_time_nodes(small_dataset, n=10)
        assert len(top) == 10
        peaks = [series.max() for _node, series in top]
        assert peaks == sorted(peaks, reverse=True)

    def test_peaks_in_paper_range(self, small_dataset, small_config):
        """Fig 8: spikes of hundreds of seconds with multi-window outliers.

        Ready time accumulates per sampling window, so bounds scale with
        the configured window (the paper's 220 s / ~30 min at 300 s).
        """
        top = top_ready_time_nodes(small_dataset, n=10)
        best_peak_s = top[0][1].max() / 1000.0
        window = small_config.sampling_seconds
        assert 0.05 * window < best_peak_s < 5 * window

    def test_baseline_exceedances_found(self, small_dataset):
        """Fig 8: various hypervisors exceed the 30 s baseline repeatedly."""
        table = ready_baseline_exceedances(small_dataset)
        assert len(table) >= 2
        assert int(np.asarray(table["exceedances"])[0]) > 1

    def test_weekday_above_weekend(self, small_dataset):
        """Fig 8: less workload and contention on weekends."""
        weekday, weekend = weekday_weekend_effect(small_dataset)
        assert weekday > weekend

    def test_top_zero(self, small_dataset):
        assert top_ready_time_nodes(small_dataset, n=0) == []
