"""Edge-case tests for the markdown report renderer."""

import pytest

from repro.analysis.report import _frame_to_markdown
from repro.frame import Frame


def test_header_and_separator():
    frame = Frame({"a": [1], "b": ["x"]})
    lines = _frame_to_markdown(frame).splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | x |"


def test_row_cap_with_ellipsis():
    frame = Frame({"v": list(range(20))})
    text = _frame_to_markdown(frame, max_rows=5)
    assert "(15 more rows)" in text
    assert text.count("\n") == 7  # header + sep + 5 rows + ellipsis


def test_float_formatting_compact():
    frame = Frame({"v": [0.123456789]})
    assert "0.1235" in _frame_to_markdown(frame)


def test_exact_row_limit_no_ellipsis():
    frame = Frame({"v": [1, 2, 3]})
    assert "more rows" not in _frame_to_markdown(frame, max_rows=3)


def test_empty_frame_renders_header_only():
    frame = Frame.empty(["a", "b"])
    lines = _frame_to_markdown(frame).splitlines()
    assert len(lines) == 2
