"""Tests for population sampling: Table 1/2 shape and lifecycle sanity."""

import numpy as np
import pytest

from repro.datagen.population import FLAVOR_MIX, sample_population
from repro.infrastructure.flavors import default_catalog

WINDOW_START = 1_000_000.0
WINDOW_END = WINDOW_START + 30 * 86_400.0


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(3)
    return sample_population(4000, WINDOW_START, WINDOW_END, rng, churn_fraction=0.1)


def test_mix_references_known_flavors():
    catalog = default_catalog()
    for name, _weight in FLAVOR_MIX:
        assert name in catalog


def test_population_size(population):
    assert len(population) == 4000 + 400


def test_vcpu_class_proportions_match_table1(population):
    """Table 1 shares: small .627, medium .316, large .040, xlarge .016."""
    counts = {"small": 0, "medium": 0, "large": 0, "xlarge": 0}
    for record in population:
        counts[record.flavor.vcpu_class] += 1
    total = len(population)
    assert counts["small"] / total == pytest.approx(0.627, abs=0.05)
    assert counts["medium"] / total == pytest.approx(0.316, abs=0.05)
    assert counts["large"] / total == pytest.approx(0.040, abs=0.02)
    assert counts["xlarge"] / total == pytest.approx(0.016, abs=0.01)


def test_ram_class_proportions_match_table2(population):
    """Table 2 shares: small .022, medium .913, large .017, xlarge .048."""
    counts = {"small": 0, "medium": 0, "large": 0, "xlarge": 0}
    for record in population:
        counts[record.flavor.ram_class] += 1
    total = len(population)
    assert counts["small"] / total == pytest.approx(0.022, abs=0.015)
    assert counts["medium"] / total == pytest.approx(0.913, abs=0.05)
    assert counts["large"] / total == pytest.approx(0.017, abs=0.015)
    assert counts["xlarge"] / total == pytest.approx(0.048, abs=0.03)


def test_initial_vms_created_before_window(population):
    initial = population[:4000]
    assert all(r.created_at < WINDOW_START for r in initial)
    # Alive at window start: deletion strictly after creation, at/after start.
    assert all(r.deleted_or_inf >= WINDOW_START for r in initial)


def test_churn_vms_arrive_within_window(population):
    churn = population[4000:]
    assert all(WINDOW_START <= r.created_at < WINDOW_END for r in churn)


def test_initial_population_mostly_survives_window(population):
    """Length-biased snapshot sampling: the standing population is
    long-lived, so only a modest share departs within 30 days."""
    initial = population[:4000]
    departing = sum(1 for r in initial if r.deleted_at is not None)
    assert departing / len(initial) < 0.35


def test_deleted_within_window_marked(population):
    for record in population:
        if record.deleted_at is not None:
            assert record.created_at < record.deleted_at <= WINDOW_END


def test_vm_ids_unique(population):
    ids = [r.vm_id for r in population]
    assert len(ids) == len(set(ids))


def test_deterministic_with_same_seed():
    a = sample_population(100, WINDOW_START, WINDOW_END, np.random.default_rng(5))
    b = sample_population(100, WINDOW_START, WINDOW_END, np.random.default_rng(5))
    assert [r.flavor.name for r in a] == [r.flavor.name for r in b]
    assert [r.created_at for r in a] == [r.created_at for r in b]


def test_invalid_inputs():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        sample_population(0, WINDOW_START, WINDOW_END, rng)
