"""CSV round-trip tests, including property-based round-trips."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.frame import Frame, read_csv, write_csv
from repro.frame.csvio import dumps_csv, loads_csv


def test_round_trip_via_file(tmp_path):
    frame = Frame({"name": ["a", "b"], "x": [1, 2], "y": [1.5, 2.5]})
    path = tmp_path / "t.csv"
    write_csv(frame, path)
    back = read_csv(path)
    assert back == frame


def test_round_trip_creates_parent_dirs(tmp_path):
    frame = Frame({"x": [1]})
    path = tmp_path / "deep" / "dir" / "t.csv"
    write_csv(frame, path)
    assert read_csv(path) == frame


def test_type_inference_int_float_string():
    frame = loads_csv("a,b,c\n1,1.5,x\n2,2.5,y\n")
    assert frame["a"].dtype.kind == "i"
    assert frame["b"].dtype.kind == "f"
    assert frame["c"].dtype == object


def test_empty_csv_gives_empty_frame():
    assert len(loads_csv("")) == 0


def test_header_only_gives_empty_columns():
    frame = loads_csv("a,b\n")
    assert frame.names == ["a", "b"]
    assert len(frame) == 0


def test_none_rendered_as_empty_string():
    frame = Frame({"x": np.asarray([None, "v"], dtype=object)})
    text = dumps_csv(frame)
    # A lone empty field is quoted by the csv module to stay distinguishable
    # from a blank line.
    assert text.splitlines()[1] in ("", '""')


_safe_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="_-"
    ),
    min_size=1,
    max_size=10,
)


@given(
    ints=st.lists(st.integers(min_value=-(10**9), max_value=10**9), min_size=1, max_size=30),
    data=st.data(),
)
def test_property_round_trip_preserves_values(ints, data):
    names = data.draw(
        st.lists(_safe_text, min_size=1, max_size=3, unique=True)
    )
    frame = Frame({name: list(ints) for name in names})
    assert loads_csv(dumps_csv(frame)) == frame


@given(
    floats=st.lists(
        st.floats(
            allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_float_round_trip_close(floats):
    frame = Frame({"v": floats})
    back = loads_csv(dumps_csv(frame))
    assert np.allclose(
        np.asarray(back["v"], dtype=float), np.asarray(floats), rtol=1e-12, atol=0
    )


@given(strings=st.lists(_safe_text, min_size=1, max_size=20))
def test_property_string_round_trip(strings):
    frame = Frame({"s": strings})
    back = loads_csv(dumps_csv(frame))
    assert [str(v) for v in back["s"]] == [str(v) for v in frame["s"]]
