"""Tests for resize events and maintenance windows in the DES runner."""

import pytest

from repro.scheduler.placement import MEMORY_MB, VCPU
from repro.simulation.runner import RegionSimulation, SimulationConfig
from tests.conftest import build_tiny_region_spec


@pytest.fixture(scope="module")
def churn_result():
    sim = RegionSimulation(
        build_tiny_region_spec(),
        SimulationConfig(
            duration_days=1.0,
            scrape_interval_s=3600,
            drs_interval_s=43_200,
            arrival_rate_per_hour=6.0,
            resize_rate_per_hour=4.0,
            maintenance_rate_per_day=6.0,
            maintenance_duration_s=2 * 3600.0,
            initial_vms=50,
            seed=11,
        ),
    )
    return sim.run()


def test_resizes_happen(churn_result):
    assert churn_result.resized + churn_result.resize_failed > 0
    assert churn_result.resized > 0


def test_allocations_consistent_after_resizes(churn_result):
    """Resize rollbacks and successes must keep placement exact."""
    for bb in churn_result.region.iter_building_blocks():
        provider = churn_result.placement.provider(bb.bb_id)
        resident = bb.vms()
        assert provider.used[VCPU] == pytest.approx(
            sum(vm.flavor.vcpus for vm in resident)
        )
        assert provider.used[MEMORY_MB] == pytest.approx(
            sum(vm.flavor.ram_mb for vm in resident)
        )


def test_no_overcommit_violation_after_churn(churn_result):
    for provider in churn_result.placement.providers():
        for rc in (VCPU, MEMORY_MB):
            assert provider.used[rc] <= provider.capacity(rc) + 1e-6


def test_maintenance_windows_ran_and_cleared(churn_result):
    assert churn_result.maintenance_windows > 0
    # All windows were 2h inside a 24h run: everything is back in service.
    in_maintenance = [
        n for n in churn_result.region.iter_nodes() if n.maintenance
    ]
    assert len(in_maintenance) <= 1  # at most a window still open at t_end


def test_resized_vms_are_active(churn_result):
    for vm in churn_result.vms.values():
        if vm.alive:
            assert vm.node_id is not None


class TestHolisticFactory:
    @pytest.fixture(scope="class")
    def holistic_result(self):
        sim = RegionSimulation(
            build_tiny_region_spec(),
            SimulationConfig(
                duration_days=0.5,
                scrape_interval_s=3600,
                drs_interval_s=43_200,
                arrival_rate_per_hour=8.0,
                initial_vms=40,
                seed=21,
                scheduler_factory="holistic",
            ),
        )
        return sim.run()

    def test_places_vms_via_node_level_scheduler(self, holistic_result):
        assert holistic_result.created > 30
        assert holistic_result.scheduler_stats["placed"] > 30

    def test_allocations_consistent(self, holistic_result):
        for bb in holistic_result.region.iter_building_blocks():
            provider = holistic_result.placement.provider(bb.bb_id)
            assert provider.used[VCPU] == pytest.approx(
                sum(vm.flavor.vcpus for vm in bb.vms())
            )

    def test_unknown_factory_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler_factory"):
            RegionSimulation(
                build_tiny_region_spec(),
                SimulationConfig(scheduler_factory="magic"),
            )
