"""Property-based tests on the scheduler + placement composition."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import build_region
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import MEMORY_MB, VCPU, PlacementService
from repro.scheduler.request import RequestSpec
from tests.conftest import build_tiny_region_spec

_CATALOG = default_catalog()
_GENERAL = sorted(f.name for f in _CATALOG.by_family("general"))
_HANA = sorted(
    f.name for f in _CATALOG.by_family("hana") if f.spec("aggregate_class") == "hana"
)

#: A stream step: either place a flavor or delete the i-th oldest live VM.
_step = st.one_of(
    st.sampled_from(_GENERAL).map(lambda name: ("create", name)),
    st.sampled_from(_HANA).map(lambda name: ("create", name)),
    st.integers(min_value=0, max_value=5).map(lambda i: ("delete", i)),
)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(stream=st.lists(_step, max_size=60))
def test_property_allocation_conservation(stream):
    """After any create/delete stream:

    - placement ``used`` equals the sum of live VMs' requests exactly,
    - no provider exceeds its capacity in any resource class,
    - every live VM's allocation points at a provider that passed the
      aggregate-exclusivity rules for its flavor.
    """
    region = build_region(build_tiny_region_spec())
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    scheduler = FilterScheduler(region, placement)

    live: dict[str, RequestSpec] = {}
    counter = 0
    for op, arg in stream:
        if op == "create":
            spec = RequestSpec(vm_id=f"vm-{counter}", flavor=_CATALOG.get(arg))
            counter += 1
            try:
                scheduler.schedule(spec)
                live[spec.vm_id] = spec
            except NoValidHost:
                pass
        else:
            if live:
                vm_id = sorted(live)[arg % len(live)]
                placement.release(vm_id)
                del live[vm_id]

    # Conservation per provider and per resource class.
    expected_vcpus: dict[str, float] = {}
    expected_mem: dict[str, float] = {}
    for vm_id, spec in live.items():
        allocation = placement.allocation_for(vm_id)
        assert allocation is not None
        expected_vcpus[allocation.provider_id] = (
            expected_vcpus.get(allocation.provider_id, 0.0) + spec.flavor.vcpus
        )
        expected_mem[allocation.provider_id] = (
            expected_mem.get(allocation.provider_id, 0.0) + spec.flavor.ram_mb
        )
        # Aggregate exclusivity honoured.
        provider = placement.provider(allocation.provider_id)
        wanted = spec.flavor.spec("aggregate_class") or ""
        assert provider.aggregate_class == wanted

    for provider in placement.providers():
        assert provider.used.get(VCPU, 0.0) == pytest.approx(
            expected_vcpus.get(provider.provider_id, 0.0)
        )
        assert provider.used.get(MEMORY_MB, 0.0) == pytest.approx(
            expected_mem.get(provider.provider_id, 0.0)
        )
        for rc in (VCPU, MEMORY_MB):
            assert provider.used.get(rc, 0.0) <= provider.capacity(rc) + 1e-6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_scheduler_deterministic(seed):
    """Identical regions + identical request streams = identical placements."""
    rng = np.random.default_rng(seed)
    names = rng.choice(_GENERAL, size=15)
    placements = []
    for _ in range(2):
        region = build_region(build_tiny_region_spec())
        placement = PlacementService()
        for bb in region.iter_building_blocks():
            placement.register_building_block(bb)
        scheduler = FilterScheduler(region, placement)
        hosts = []
        for i, name in enumerate(names):
            try:
                result = scheduler.schedule(
                    RequestSpec(vm_id=f"vm-{i}", flavor=_CATALOG.get(str(name)))
                )
                hosts.append(result.host_id)
            except NoValidHost:
                hosts.append(None)
        placements.append(hosts)
    assert placements[0] == placements[1]
