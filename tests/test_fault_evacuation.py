"""Evacuation, recovery, and graceful degradation under injected faults."""

import pytest

from repro.drs.balancer import DrsBalancer
from repro.faults import FaultConfig, MigrationFaultModel
from repro.faults.scenario import ScenarioConfig, run_fault_scenario
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import (
    BuildingBlockSpec,
    DatacenterSpec,
    TopologySpec,
    build_region,
)
from repro.infrastructure.vm import VM, VMState
from repro.rebalancer.driver import RebalanceDriver
from repro.scheduler.placement import VCPU, PlacementService
from repro.simulation.runner import RegionSimulation, SimulationConfig
from tests.conftest import make_bb

CATALOG = default_catalog()


def _spec(bbs: int = 2, nodes: int = 2) -> TopologySpec:
    return TopologySpec(
        region_id="r",
        datacenters=(
            DatacenterSpec(
                dc_id="dc1",
                az_id="az1",
                building_blocks=tuple(
                    BuildingBlockSpec(bb_id=f"bb{i}", node_count=nodes)
                    for i in range(bbs)
                ),
            ),
        ),
    )


def _sim(bbs: int = 2, nodes: int = 2, **fault_kwargs) -> RegionSimulation:
    faults = FaultConfig(
        seed=11,
        evac_backoff_base_s=10.0,
        evac_batch_spacing_s=30.0,
        **fault_kwargs,
    )
    return RegionSimulation(
        _spec(bbs, nodes),
        SimulationConfig(
            duration_days=1.0,
            arrival_rate_per_hour=0.0,
            initial_vms=0,
            seed=5,
            faults=faults,
        ),
    )


def _active_vm(vm_id: str, flavor_name: str) -> VM:
    vm = VM(vm_id=vm_id, flavor=CATALOG.get(flavor_name))
    vm.transition(VMState.BUILDING)
    vm.transition(VMState.ACTIVE)
    return vm


def _place(sim: RegionSimulation, vm_id: str, flavor_name: str, node_id: str) -> VM:
    """Place a VM the way _handle_create would: claim + node + registry."""
    node = sim._node_index[node_id]
    vm = _active_vm(vm_id, flavor_name)
    sim.placement.claim(vm_id, node.building_block, vm.flavor.requested())
    node.add_vm(vm)
    sim.vms[vm_id] = vm
    return vm


class TestEvacuation:
    def test_host_failure_evacuates_all_vms(self):
        sim = _sim()
        for i in range(3):
            _place(sim, f"vm{i}", "g_c8_m32", "bb0-node-000")
        failed = sim._node_index["bb0-node-000"]

        sim.evacuation.on_host_fail(sim.engine, failed)
        assert failed.failed and not failed.healthy
        assert not failed.vms
        sim.engine.run_until(3600.0)

        report = sim.fault_report
        assert report.host_failures == 1
        assert report.evacuations_requested == 3
        assert report.evacuations_succeeded == 3
        assert report.dead_letters == []
        assert len(report.evacuation_latencies_s) == 3
        for vm in sim.vms.values():
            assert vm.state is VMState.ACTIVE
            assert vm.node_id is not None and vm.node_id != "bb0-node-000"
            allocation = sim.placement.allocation_for(vm.vm_id)
            node = sim._node_index[vm.node_id]
            assert allocation.provider_id == node.building_block

    def test_evacuation_batches_are_spaced_in_time(self):
        """With a batch cap of 2, 5 VMs start across three spaced batches."""
        sim = _sim(max_concurrent_evacuations=2)
        for i in range(5):
            _place(sim, f"vm{i}", "g_c2_m8", "bb0-node-000")
        sim.evacuation.on_host_fail(sim.engine, sim._node_index["bb0-node-000"])
        sim.engine.run_until(3600.0)
        report = sim.fault_report
        assert report.evacuations_succeeded == 5
        # Batch spacing is 30 s: latencies land at 0, 30, and 60 seconds.
        assert sorted(set(report.evacuation_latencies_s)) == [0.0, 30.0, 60.0]

    def test_host_recovery_restores_health(self):
        sim = _sim()
        node = sim._node_index["bb0-node-000"]
        sim.evacuation.on_host_fail(sim.engine, node)
        assert not node.healthy
        sim.evacuation.on_host_recover(sim.engine, node)
        assert node.healthy
        assert sim.fault_report.host_recoveries == 1

    def test_capacity_exhaustion_dead_letters_vms(self):
        """One BB, sibling node full: every evacuation must dead-letter."""
        sim = _sim(bbs=1, nodes=2, evac_max_retries=2)
        # Fill both nodes' memory exactly (8 x 256 GiB = 2 TiB per node).
        for n, node_id in enumerate(("bb0-node-000", "bb0-node-001")):
            for i in range(8):
                _place(sim, f"vm{n}-{i}", "g_c32_m256", node_id)
        sim.evacuation.on_host_fail(sim.engine, sim._node_index["bb0-node-000"])
        sim.engine.run_until(5000.0)

        report = sim.fault_report
        assert report.evacuations_requested == 8
        assert report.evacuations_succeeded == 0
        assert len(report.dead_letters) == 8
        for letter in report.dead_letters:
            assert letter.failed_host == "bb0-node-000"
            assert letter.attempts == 2
            assert letter.dead_lettered_at > letter.failed_at
        for vm_id in report.dead_lettered_vms:
            vm = sim.vms[vm_id]
            assert vm.state is VMState.ERROR
            assert sim.placement.allocation_for(vm_id) is None
        # The surviving node's VMs were never disturbed.
        assert len(sim._node_index["bb0-node-001"].vms) == 8

    def test_retry_is_moot_for_deleted_vm(self):
        sim = _sim()
        vm = _place(sim, "vm0", "g_c8_m32", "bb0-node-000")
        sim.evacuation.on_host_fail(sim.engine, sim._node_index["bb0-node-000"])
        vm.transition(VMState.DELETED)
        sim.engine.run_until(3600.0)
        report = sim.fault_report
        assert report.evacuations_succeeded == 0
        assert report.dead_letters == []


class TestDrsDegradation:
    def _loaded_bb(self):
        bb = make_bb("bb0", nodes=3)
        for i in range(6):
            bb.nodes["bb0-n0"].add_vm(_active_vm(f"vm{i}", "g_c8_m32"))
        return bb

    def test_balances_without_faults(self):
        bb = self._loaded_bb()
        migrations = DrsBalancer().run(bb)
        assert migrations
        assert all(m.source_node != m.target_node for m in migrations)

    def test_abort_keeps_vm_on_source(self):
        bb = self._loaded_bb()
        model = MigrationFaultModel(abort_fraction=1.0, seed=1)
        migrations = DrsBalancer().run(bb, fault_model=model)
        assert migrations == []
        assert model.attempted >= 1
        assert model.aborted == model.attempted
        assert len(bb.nodes["bb0-n0"].vms) == 6  # nobody actually moved

    def test_never_targets_unhealthy_node(self):
        bb = self._loaded_bb()
        bb.nodes["bb0-n1"].failed = True
        migrations = DrsBalancer().run(bb)
        assert migrations
        assert all(m.target_node != "bb0-n1" for m in migrations)
        assert not bb.nodes["bb0-n1"].vms

    def test_load_fractions_skip_failed_nodes(self):
        bb = self._loaded_bb()
        bb.nodes["bb0-n2"].failed = True
        fractions = DrsBalancer().node_load_fractions(bb)
        assert "bb0-n2" not in fractions
        assert set(fractions) == {"bb0-n0", "bb0-n1"}


class TestRebalanceDriverDegradation:
    def _region_with_vm(self):
        region = build_region(_spec(bbs=2, nodes=1))
        placement = PlacementService()
        for bb in region.iter_building_blocks():
            placement.register_building_block(bb)
        vm = _active_vm("vm0", "g_c8_m32")
        placement.claim("vm0", "bb0", vm.flavor.requested())
        region.find_node("bb0-node-000").add_vm(vm)
        return region, placement, vm

    def test_abort_rolls_back_cross_bb_claim(self):
        region, placement, vm = self._region_with_vm()
        driver = RebalanceDriver(
            region, placement, fault_model=MigrationFaultModel(1.0, seed=2)
        )
        moved = driver._apply_move("vm0", "bb0-node-000", "bb1-node-000")
        assert not moved
        assert vm.node_id == "bb0-node-000"
        assert placement.allocation_for("vm0").provider_id == "bb0"
        assert placement.provider("bb1").used[VCPU] == 0.0

    def test_move_without_fault_rehomes_claim(self):
        region, placement, vm = self._region_with_vm()
        driver = RebalanceDriver(region, placement)
        assert driver._apply_move("vm0", "bb0-node-000", "bb1-node-000")
        assert vm.node_id == "bb1-node-000"
        assert placement.allocation_for("vm0").provider_id == "bb1"

    def test_refuses_unhealthy_target(self):
        region, placement, vm = self._region_with_vm()
        region.find_node("bb1-node-000").failed = True
        model = MigrationFaultModel(abort_fraction=0.0, seed=3)
        driver = RebalanceDriver(region, placement, fault_model=model)
        assert not driver._apply_move("vm0", "bb0-node-000", "bb1-node-000")
        assert vm.node_id == "bb0-node-000"
        assert model.attempted == 0  # rejected before precopy even starts

    def test_dc_imbalance_ignores_failed_nodes(self):
        region, placement, vm = self._region_with_vm()
        driver = RebalanceDriver(region, placement)
        with_failed = driver.dc_imbalance("dc1")
        region.find_node("bb1-node-000").failed = True
        # Only one healthy node remains: no imbalance signal at all.
        assert driver.dc_imbalance("dc1") == 0.0
        assert with_failed >= 0.0

    def test_recovery_move_cap_validated(self):
        region = build_region(_spec())
        with pytest.raises(ValueError):
            RebalanceDriver(region, recovery_move_cap=-1)


class TestScenarioInvariants:
    def test_placement_stays_consistent_under_chaos(self):
        config = ScenarioConfig(
            building_blocks=2,
            nodes_per_bb=3,
            duration_days=0.5,
            seed=9,
            arrival_rate_per_hour=8.0,
            initial_vms=60,
            faults=FaultConfig(
                seed=9,
                host_failure_rate_per_day=10.0,
                migration_abort_fraction=0.2,
                scrape_gap_probability=0.05,
                stale_node_probability=0.05,
            ),
        )
        result = run_fault_scenario(config)
        report = result.fault_report
        assert report.host_failures > 0
        assert report.host_failures == len(report.failed_hosts)
        assert report.host_recoveries <= report.host_failures
        # Every VM is either placed consistently or explicitly accounted for.
        for vm in result.vms.values():
            allocation = result.placement.allocation_for(vm.vm_id)
            if vm.alive:
                node = result.region.find_node(vm.node_id)
                assert allocation is not None
                assert allocation.provider_id == node.building_block
            else:
                # ERROR (dead-lettered or retry pending at sim end) and
                # DELETED VMs hold no allocation.
                assert allocation is None
        assert (
            report.evacuations_succeeded + len(report.dead_letters)
            <= report.evacuations_requested
        )
