"""Property-based tests for the telemetry query language."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.telemetry.query import evaluate
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries

_name = st.from_regex(r"[a-z][a-z0-9_]{0,15}", fullmatch=True)
_value = st.from_regex(r"[a-zA-Z0-9_.\-]{1,12}", fullmatch=True)


@settings(max_examples=60, deadline=None)
@given(
    metric=_name,
    labels=st.dictionaries(_name, _value, min_size=0, max_size=3),
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
)
def test_property_selector_round_trips_any_labels(metric, labels, values):
    """Whatever labels the exporter used, a selector built from them finds
    exactly that series with its values intact."""
    store = MetricStore()
    store.append_series(metric, labels, TimeSeries.regular(0, 60, values))
    matcher = ", ".join(f'{k}="{v}"' for k, v in labels.items())
    query = f"{metric}{{{matcher}}}" if matcher else metric
    result = evaluate(store, query)
    assert len(result) == 1
    np.testing.assert_array_equal(result.single().values, np.asarray(values))


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    n_series=st.integers(min_value=1, max_value=5),
)
def test_property_aggregations_match_numpy(values, n_series):
    """mean/max/min/sum over aligned series equal the numpy results."""
    store = MetricStore()
    arrays = [np.asarray(values) * (i + 1) for i in range(n_series)]
    for i, arr in enumerate(arrays):
        store.append_series("m", {"s": str(i)}, TimeSeries.regular(0, 60, arr))
    stacked = np.stack(arrays)
    for agg, fn in (("mean", np.mean), ("max", np.max), ("min", np.min),
                    ("sum", np.sum)):
        series = evaluate(store, f"{agg}(m)").single()
        np.testing.assert_allclose(
            series.values, fn(stacked, axis=0), rtol=1e-12, atol=1e-9
        )
