"""Tests for weighers and the normalising weigher pipeline."""

import pytest

from repro.infrastructure.flavors import Flavor
from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec
from repro.scheduler.weighers import (
    CPUWeigher,
    DiskWeigher,
    FitnessWeigher,
    IoOpsWeigher,
    NumInstancesWeigher,
    RAMWeigher,
    WeigherPipeline,
    _normalize,
)
import numpy as np


def host(host_id, vcpus=0.0, ram=0.0, disk=0.0, instances=0) -> HostState:
    return HostState(
        host_id=host_id,
        free_vcpus=vcpus,
        free_ram_mb=ram,
        free_disk_gb=disk,
        total_vcpus=1000,
        total_ram_mb=1e7,
        total_disk_gb=1e5,
        num_instances=instances,
    )


SPEC = RequestSpec(vm_id="v", flavor=Flavor("f", vcpus=4, ram_gib=16))


class TestRawWeights:
    def test_cpu_ram_disk_prefer_free(self):
        h = host("h", vcpus=10, ram=100, disk=7)
        assert CPUWeigher().raw_weight(h, SPEC) == 10
        assert RAMWeigher().raw_weight(h, SPEC) == 100
        assert DiskWeigher().raw_weight(h, SPEC) == 7

    def test_num_instances_prefers_fewer(self):
        assert NumInstancesWeigher().raw_weight(host("h", instances=5), SPEC) == -5

    def test_io_ops_prefers_idle_provisioning(self):
        busy = host("busy")
        busy.num_io_ops = 7
        calm = host("calm")
        weigher = IoOpsWeigher()
        assert weigher.raw_weight(calm, SPEC) > weigher.raw_weight(busy, SPEC)

    def test_fitness_prefers_tight_fit(self):
        tight = host("tight", vcpus=5, ram=17 * 1024)
        roomy = host("roomy", vcpus=500, ram=1e6)
        weigher = FitnessWeigher()
        assert weigher.raw_weight(tight, SPEC) > weigher.raw_weight(roomy, SPEC)


class TestNormalization:
    def test_min_max_to_unit_interval(self):
        out = _normalize(np.asarray([10.0, 20.0, 30.0]))
        assert list(out) == [0.0, 0.5, 1.0]

    def test_constant_column_is_zero(self):
        out = _normalize(np.asarray([5.0, 5.0]))
        assert list(out) == [0.0, 0.0]


class TestPipeline:
    def test_spread_ranks_empustest_first(self):
        hosts = [host("full", vcpus=10), host("empty", vcpus=100)]
        ranked = WeigherPipeline([CPUWeigher(1.0)]).rank(hosts, SPEC)
        assert ranked[0][0].host_id == "empty"

    def test_negative_multiplier_packs(self):
        """Nova semantics: negative multiplier inverts the preference."""
        hosts = [host("full", vcpus=10), host("empty", vcpus=100)]
        ranked = WeigherPipeline([CPUWeigher(-1.0)]).rank(hosts, SPEC)
        assert ranked[0][0].host_id == "full"

    def test_multiplier_magnitude_breaks_conflicts(self):
        # RAM says host a; CPU says host b; RAM has the bigger multiplier.
        hosts = [host("a", vcpus=1, ram=100), host("b", vcpus=100, ram=1)]
        ranked = WeigherPipeline([CPUWeigher(1.0), RAMWeigher(3.0)]).rank(hosts, SPEC)
        assert ranked[0][0].host_id == "a"

    def test_deterministic_tiebreak_by_host_id(self):
        hosts = [host("b", vcpus=5), host("a", vcpus=5)]
        ranked = WeigherPipeline([CPUWeigher(1.0)]).rank(hosts, SPEC)
        assert [h.host_id for h, _ in ranked] == ["a", "b"]

    def test_empty_host_list(self):
        assert WeigherPipeline([CPUWeigher()]).rank([], SPEC) == []

    def test_empty_weigher_list_rejected(self):
        with pytest.raises(ValueError):
            WeigherPipeline([])

    def test_scores_reported(self):
        hosts = [host("a", vcpus=0), host("b", vcpus=10)]
        ranked = WeigherPipeline([CPUWeigher(2.0)]).rank(hosts, SPEC)
        assert ranked[0][1] == pytest.approx(2.0)
        assert ranked[1][1] == pytest.approx(0.0)
